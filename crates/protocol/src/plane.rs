//! Bit-sliced state planes and the word-op program they are evaluated with.
//!
//! The scalar engine steps one scenario at a time; this module stores
//! scenario state *column-wise* instead: one `u64` word per state bit holds
//! that bit for 64 scenarios ("lanes") at once, and a protocol transition
//! lowered to word ops (see `sc-core`'s DAG builder) advances all lanes with
//! a single pass of AND/OR/XOR/MUX/adder networks. The layout follows the
//! codec in [`crate::BitVec`]: bit `i` of an encoded state maps to plane `i`
//! of its bundle, so plane order is MSB-first exactly like `push_bits`.
//!
//! The pieces:
//!
//! * [`PlaneBuf`] — a `planes × lane_words` transposed arena with
//!   pack/unpack converters from the codec bit strings.
//! * [`Op`] / [`Program`] — a flat bytecode of word operations over plane
//!   ranges, executed by [`Program::exec`] against an [`ExecSpaces`] bundle
//!   of input arenas (current state, replay ring, packed constants, gather
//!   tables).
//! * [`FaceRef`] / [`RoundFaces`] — how one round's adversarial faces are
//!   named when compiling a round program: each (faulty sender, receiver)
//!   pair resolves to an honest broadcast, a ring lag, a packed bundle, or a
//!   gather table.
//! * [`SlicedLayout`] — the per-node bundle layout (state, derived "ext"
//!   planes, output field) shared between the lowering and the engine.

use crate::bits::BitVec;

/// Transposed scenario state: `planes × lane_words` words of 64 lanes each.
///
/// Plane `p`, lane `ℓ` lives at bit `ℓ % 64` of word `ℓ / 64` of plane `p`.
/// Plane indices are MSB-first per field, matching [`BitVec::push_bits`]:
/// packing an encoded state at `base_plane` puts codec bit `i` into plane
/// `base_plane + i`, so the *first* plane of a `w`-bit field is the value's
/// most significant bit.
///
/// # Example
///
/// ```
/// use sc_protocol::{BitVec, PlaneBuf};
///
/// let mut buf = PlaneBuf::new(4, 2); // 4 planes, 128 lanes
/// let mut bits = BitVec::new();
/// bits.push_bits(0b1011, 4);
/// buf.pack_lane(70, 0, &bits);
/// assert_eq!(buf.read_value(70, 0, 4), 0b1011);
/// assert_eq!(buf.read_value(69, 0, 4), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlaneBuf {
    planes: usize,
    lane_words: usize,
    data: Vec<u64>,
}

impl PlaneBuf {
    /// Creates a zeroed arena of `planes` bit planes spanning
    /// `lane_words * 64` lanes.
    pub fn new(planes: usize, lane_words: usize) -> Self {
        PlaneBuf {
            planes,
            lane_words,
            data: vec![0; planes * lane_words],
        }
    }

    /// Number of bit planes.
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// Words per plane (64 lanes each).
    pub fn lane_words(&self) -> usize {
        self.lane_words
    }

    /// Number of lanes (`lane_words * 64`).
    pub fn lanes(&self) -> usize {
        self.lane_words * 64
    }

    /// The word holding lanes `64k..64k+64` of plane `p`.
    #[inline]
    pub fn word(&self, plane: usize, k: usize) -> u64 {
        debug_assert!(plane < self.planes && k < self.lane_words);
        self.data[plane * self.lane_words + k]
    }

    /// Mutable access to one plane word.
    #[inline]
    pub fn word_mut(&mut self, plane: usize, k: usize) -> &mut u64 {
        debug_assert!(plane < self.planes && k < self.lane_words);
        &mut self.data[plane * self.lane_words + k]
    }

    /// One full plane as a word slice.
    pub fn plane(&self, plane: usize) -> &[u64] {
        &self.data[plane * self.lane_words..(plane + 1) * self.lane_words]
    }

    /// Zeroes every plane, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|w| *w = 0);
    }

    /// Reads the bit of `lane` in `plane`.
    #[inline]
    pub fn lane_bit(&self, plane: usize, lane: usize) -> bool {
        (self.word(plane, lane / 64) >> (lane % 64)) & 1 == 1
    }

    /// Sets or clears the bit of `lane` in `plane`.
    #[inline]
    pub fn set_lane_bit(&mut self, plane: usize, lane: usize, bit: bool) {
        let mask = 1u64 << (lane % 64);
        let w = self.word_mut(plane, lane / 64);
        if bit {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Transposes one codec bit string into this arena: codec bit `i` of
    /// `bits` lands in plane `base_plane + i` at `lane`.
    ///
    /// # Panics
    ///
    /// Panics if the planes or the lane are out of range.
    pub fn pack_lane(&mut self, lane: usize, base_plane: usize, bits: &BitVec) {
        assert!(lane < self.lanes(), "lane {lane} out of range");
        assert!(
            base_plane + bits.len() <= self.planes,
            "field of {} bits at plane {base_plane} exceeds {} planes",
            bits.len(),
            self.planes
        );
        for i in 0..bits.len() {
            self.set_lane_bit(base_plane + i, lane, bits.bit(i));
        }
    }

    /// Transposes `width` planes of one lane back into a codec bit string,
    /// appending to `out` (plane `base_plane + i` becomes the `i`-th pushed
    /// bit, restoring MSB-first field order).
    pub fn unpack_lane(&self, lane: usize, base_plane: usize, width: usize, out: &mut BitVec) {
        for i in 0..width {
            out.push_bit(self.lane_bit(base_plane + i, lane));
        }
    }

    /// Reads a `width ≤ 64`-bit field of one lane as an integer, treating
    /// `base_plane` as the most significant bit (codec order).
    pub fn read_value(&self, lane: usize, base_plane: usize, width: usize) -> u64 {
        assert!(width <= 64, "width {width} exceeds u64");
        let mut v = 0u64;
        for i in 0..width {
            v = (v << 1) | u64::from(self.lane_bit(base_plane + i, lane));
        }
        v
    }

    /// Broadcasts one codec bit string into **all** lanes: codec bit `i`
    /// sets plane `base_plane + i` to all-ones or all-zeroes.
    pub fn fill_uniform(&mut self, base_plane: usize, bits: &BitVec) {
        assert!(base_plane + bits.len() <= self.planes);
        for i in 0..bits.len() {
            let fill = if bits.bit(i) { u64::MAX } else { 0 };
            let p = base_plane + i;
            self.data[p * self.lane_words..(p + 1) * self.lane_words]
                .iter_mut()
                .for_each(|w| *w = fill);
        }
    }

    /// Copies the whole arena of `other` over this one.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, other: &PlaneBuf) {
        assert_eq!(self.planes, other.planes);
        assert_eq!(self.lane_words, other.lane_words);
        self.data.copy_from_slice(&other.data);
    }
}

/// Which input arena a [`Op::Load`] reads from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Space {
    /// The current-round state arena.
    Cur,
    /// The replay ring: `Ring(lag)` is the state arena `lag ≥ 1` rounds ago.
    Ring(u8),
    /// A packed constant bundle (crash freezes, scripted raw palettes).
    Packed(u16),
    /// A per-round gather table materialised by the engine (lane-varying
    /// donor selection, e.g. two-faced schedules).
    Gather(u8),
}

/// One word operation over plane ranges of the scratch arena.
///
/// All `dst`/`a`/`b`/`c` fields are plane offsets into the program's scratch
/// arena; widths count planes. Multi-plane operands are MSB-first (plane
/// `a + 0` is the most significant bit), matching [`PlaneBuf`] packing.
/// Comparison and arithmetic ops carry per-operand widths and zero-extend
/// the shorter operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// `dst[0..w] = space[off..off+w]`.
    Load {
        /// Destination plane offset.
        dst: u32,
        /// Source arena.
        space: Space,
        /// Source plane offset.
        off: u32,
        /// Planes copied.
        w: u16,
    },
    /// `dst[0..w] = value` broadcast to every lane (plane `dst` holds bit
    /// `w-1` of `value`).
    Const {
        /// Destination plane offset.
        dst: u32,
        /// Lane-uniform value.
        value: u64,
        /// Field width in planes.
        w: u16,
    },
    /// `dst = !a`, plane-wise over `w` planes.
    Not {
        /// Destination plane offset.
        dst: u32,
        /// Operand plane offset.
        a: u32,
        /// Field width in planes.
        w: u16,
    },
    /// `dst = a & b`, plane-wise over `w` planes.
    And {
        /// Destination plane offset.
        dst: u32,
        /// Left operand plane offset.
        a: u32,
        /// Right operand plane offset.
        b: u32,
        /// Field width in planes.
        w: u16,
    },
    /// `dst = a | b`, plane-wise over `w` planes.
    Or {
        /// Destination plane offset.
        dst: u32,
        /// Left operand plane offset.
        a: u32,
        /// Right operand plane offset.
        b: u32,
        /// Field width in planes.
        w: u16,
    },
    /// `dst = a ^ b`, plane-wise over `w` planes.
    Xor {
        /// Destination plane offset.
        dst: u32,
        /// Left operand plane offset.
        a: u32,
        /// Right operand plane offset.
        b: u32,
        /// Field width in planes.
        w: u16,
    },
    /// `dst = c ? a : b` per lane; `c` is a single plane.
    Mux {
        /// Destination plane offset.
        dst: u32,
        /// Single-plane lane condition.
        c: u32,
        /// Taken when the condition bit is set.
        a: u32,
        /// Taken when the condition bit is clear.
        b: u32,
        /// Field width in planes.
        w: u16,
    },
    /// Single-plane `dst = (a == b)` with zero-extension of the narrower
    /// operand.
    Eq {
        /// Destination plane offset (1 plane).
        dst: u32,
        /// Left operand plane offset.
        a: u32,
        /// Left operand width.
        aw: u16,
        /// Right operand plane offset.
        b: u32,
        /// Right operand width.
        bw: u16,
    },
    /// Single-plane unsigned `dst = (a < b)` with zero-extension.
    Lt {
        /// Destination plane offset (1 plane).
        dst: u32,
        /// Left operand plane offset.
        a: u32,
        /// Left operand width.
        aw: u16,
        /// Right operand plane offset.
        b: u32,
        /// Right operand width.
        bw: u16,
    },
    /// `dst = (a + b) mod 2^w`, a ripple-carry adder over `w` result planes.
    Add {
        /// Destination plane offset.
        dst: u32,
        /// Left operand plane offset.
        a: u32,
        /// Left operand width.
        aw: u16,
        /// Right operand plane offset.
        b: u32,
        /// Right operand width.
        bw: u16,
        /// Result width in planes.
        w: u16,
    },
    /// `dst = (a - b) mod 2^w` (two's complement: `a + !b + 1`).
    Sub {
        /// Destination plane offset.
        dst: u32,
        /// Left operand plane offset.
        a: u32,
        /// Left operand width.
        aw: u16,
        /// Right operand plane offset.
        b: u32,
        /// Right operand width.
        bw: u16,
        /// Result width in planes.
        w: u16,
    },
    /// `dst[0..w] = a[0..w]` within the scratch arena.
    Copy {
        /// Destination plane offset.
        dst: u32,
        /// Source plane offset.
        a: u32,
        /// Planes copied.
        w: u16,
    },
    /// Writes `src[0..w]` of the scratch arena into the *next-state* arena
    /// at plane `off`.
    Store {
        /// Source plane offset in the scratch arena.
        src: u32,
        /// Destination plane offset in the next-state arena.
        off: u32,
        /// Planes written.
        w: u16,
    },
}

/// The read-only input arenas one round program executes against.
pub struct ExecSpaces<'a> {
    /// Current-round state (all node bundles).
    pub cur: &'a PlaneBuf,
    /// Replay ring: `ring[lag - 1]` is the state `lag` rounds ago. May be
    /// shorter than the deepest lag only if no op references deeper lags.
    pub ring: &'a [PlaneBuf],
    /// Packed constant bundles, indexed by [`Space::Packed`] id.
    pub packed: &'a [PlaneBuf],
    /// Per-round gather tables, indexed by [`Space::Gather`] id.
    pub gather: &'a [PlaneBuf],
}

/// A compiled round program: a flat op list over a scratch arena.
///
/// Produced once per distinct face pattern by the lowering in `sc-core` and
/// executed every round by the sliced engine. Execution is deterministic and
/// branch-free: every op touches whole plane words, so one pass advances
/// `64 × lane_words` scenarios.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// The operations, in execution order (already topologically sorted).
    pub ops: Vec<Op>,
    /// Scratch arena height in planes.
    pub arena_planes: u32,
}

impl Program {
    /// Runs the program: reads `spaces`, writes stored fields into `next`.
    ///
    /// `scratch` is resized to the program's arena and reused across calls.
    /// Planes of `next` that no [`Op::Store`] covers are left untouched, so
    /// the engine pre-copies `cur` into `next` for carried-over planes (the
    /// lowering stores every live plane, making that copy belt-and-braces).
    pub fn exec(&self, spaces: &ExecSpaces<'_>, next: &mut PlaneBuf, scratch: &mut Vec<u64>) {
        let lw = spaces.cur.lane_words();
        debug_assert_eq!(next.lane_words(), lw);
        scratch.clear();
        scratch.resize(self.arena_planes as usize * lw, 0);
        if lw == 1 {
            // The dominant attack-sweep shape (≤ 64 scenarios): one word
            // per plane, so the plane arithmetic collapses to direct
            // indexing and the per-word inner loops disappear.
            return self.exec_single(spaces, next, scratch);
        }
        let idx = |p: u32, k: usize| p as usize * lw + k;
        for op in &self.ops {
            match *op {
                Op::Load { dst, space, off, w } => {
                    let src = match space {
                        Space::Cur => spaces.cur,
                        Space::Ring(lag) => &spaces.ring[lag as usize - 1],
                        Space::Packed(id) => &spaces.packed[id as usize],
                        Space::Gather(id) => &spaces.gather[id as usize],
                    };
                    for i in 0..w as u32 {
                        for k in 0..lw {
                            scratch[idx(dst + i, k)] = src.word((off + i) as usize, k);
                        }
                    }
                }
                Op::Const { dst, value, w } => {
                    for i in 0..w as u32 {
                        let bit = (value >> (w as u32 - 1 - i)) & 1;
                        let fill = if bit == 1 { u64::MAX } else { 0 };
                        for k in 0..lw {
                            scratch[idx(dst + i, k)] = fill;
                        }
                    }
                }
                Op::Not { dst, a, w } => {
                    for i in 0..w as u32 {
                        for k in 0..lw {
                            scratch[idx(dst + i, k)] = !scratch[idx(a + i, k)];
                        }
                    }
                }
                Op::And { dst, a, b, w } => {
                    for i in 0..w as u32 {
                        for k in 0..lw {
                            scratch[idx(dst + i, k)] =
                                scratch[idx(a + i, k)] & scratch[idx(b + i, k)];
                        }
                    }
                }
                Op::Or { dst, a, b, w } => {
                    for i in 0..w as u32 {
                        for k in 0..lw {
                            scratch[idx(dst + i, k)] =
                                scratch[idx(a + i, k)] | scratch[idx(b + i, k)];
                        }
                    }
                }
                Op::Xor { dst, a, b, w } => {
                    for i in 0..w as u32 {
                        for k in 0..lw {
                            scratch[idx(dst + i, k)] =
                                scratch[idx(a + i, k)] ^ scratch[idx(b + i, k)];
                        }
                    }
                }
                Op::Mux { dst, c, a, b, w } => {
                    for i in 0..w as u32 {
                        for k in 0..lw {
                            let sel = scratch[idx(c, k)];
                            scratch[idx(dst + i, k)] =
                                (sel & scratch[idx(a + i, k)]) | (!sel & scratch[idx(b + i, k)]);
                        }
                    }
                }
                Op::Eq { dst, a, aw, b, bw } => {
                    let nbits = aw.max(bw) as u32;
                    for k in 0..lw {
                        let mut acc = u64::MAX;
                        for j in 0..nbits {
                            let av = operand_bit(scratch, &idx, a, aw, j, k);
                            let bv = operand_bit(scratch, &idx, b, bw, j, k);
                            acc &= !(av ^ bv);
                        }
                        scratch[idx(dst, k)] = acc;
                    }
                }
                Op::Lt { dst, a, aw, b, bw } => {
                    let nbits = aw.max(bw) as u32;
                    for k in 0..lw {
                        let mut lt = 0u64;
                        let mut eqm = u64::MAX;
                        // MSB-first scan: a < b at the first differing bit.
                        for j in (0..nbits).rev() {
                            let av = operand_bit(scratch, &idx, a, aw, j, k);
                            let bv = operand_bit(scratch, &idx, b, bw, j, k);
                            lt |= eqm & !av & bv;
                            eqm &= !(av ^ bv);
                        }
                        scratch[idx(dst, k)] = lt;
                    }
                }
                Op::Add {
                    dst,
                    a,
                    aw,
                    b,
                    bw,
                    w,
                } => {
                    for k in 0..lw {
                        let mut carry = 0u64;
                        // LSB-first ripple over the result planes.
                        for j in 0..w as u32 {
                            let av = operand_bit(scratch, &idx, a, aw, j, k);
                            let bv = operand_bit(scratch, &idx, b, bw, j, k);
                            let sum = av ^ bv ^ carry;
                            carry = (av & bv) | (carry & (av ^ bv));
                            scratch[idx(dst + (w as u32 - 1 - j), k)] = sum;
                        }
                    }
                }
                Op::Sub {
                    dst,
                    a,
                    aw,
                    b,
                    bw,
                    w,
                } => {
                    for k in 0..lw {
                        let mut carry = u64::MAX; // the +1 of two's complement
                        for j in 0..w as u32 {
                            let av = operand_bit(scratch, &idx, a, aw, j, k);
                            let bv = !operand_bit(scratch, &idx, b, bw, j, k);
                            let sum = av ^ bv ^ carry;
                            carry = (av & bv) | (carry & (av ^ bv));
                            scratch[idx(dst + (w as u32 - 1 - j), k)] = sum;
                        }
                    }
                }
                Op::Copy { dst, a, w } => {
                    for i in 0..w as u32 {
                        for k in 0..lw {
                            scratch[idx(dst + i, k)] = scratch[idx(a + i, k)];
                        }
                    }
                }
                Op::Store { src, off, w } => {
                    for i in 0..w as u32 {
                        for k in 0..lw {
                            *next.word_mut((off + i) as usize, k) = scratch[idx(src + i, k)];
                        }
                    }
                }
            }
        }
    }

    /// [`Program::exec`] specialised to `lane_words == 1`: every plane is
    /// one u64, operands index the scratch arena directly, and the
    /// bitwise ops run over bounds-check-free slice windows. The windows
    /// are sound because the arena is SSA and placed in topological
    /// order: every operand plane lies strictly below `dst`, so
    /// `split_at_mut(dst)` separates reads from writes.
    fn exec_single(&self, spaces: &ExecSpaces<'_>, next: &mut PlaneBuf, scratch: &mut [u64]) {
        /// Value bit `j` (LSB-indexed) of the MSB-first operand at `a`,
        /// zero-extended past its width.
        #[inline]
        fn bit1(lo: &[u64], a: u32, aw: u16, j: u32) -> u64 {
            if j < aw as u32 {
                lo[(a + (aw as u32 - 1 - j)) as usize]
            } else {
                0
            }
        }
        /// Operand window `a .. a + w` below the split point.
        #[inline]
        fn win(lo: &[u64], a: u32, w: u16) -> &[u64] {
            &lo[a as usize..a as usize + w as usize]
        }
        for op in &self.ops {
            match *op {
                Op::Load { dst, space, off, w } => {
                    let src = match space {
                        Space::Cur => spaces.cur,
                        Space::Ring(lag) => &spaces.ring[lag as usize - 1],
                        Space::Packed(id) => &spaces.packed[id as usize],
                        Space::Gather(id) => &spaces.gather[id as usize],
                    };
                    for i in 0..w as u32 {
                        scratch[(dst + i) as usize] = src.word((off + i) as usize, 0);
                    }
                }
                Op::Const { dst, value, w } => {
                    for i in 0..w as u32 {
                        let bit = (value >> (w as u32 - 1 - i)) & 1;
                        scratch[(dst + i) as usize] = if bit == 1 { u64::MAX } else { 0 };
                    }
                }
                Op::Not { dst, a, w } => {
                    let (lo, hi) = scratch.split_at_mut(dst as usize);
                    for (d, &x) in hi[..w as usize].iter_mut().zip(win(lo, a, w)) {
                        *d = !x;
                    }
                }
                Op::And { dst, a, b, w } => {
                    let (lo, hi) = scratch.split_at_mut(dst as usize);
                    for ((d, &x), &y) in hi[..w as usize]
                        .iter_mut()
                        .zip(win(lo, a, w))
                        .zip(win(lo, b, w))
                    {
                        *d = x & y;
                    }
                }
                Op::Or { dst, a, b, w } => {
                    let (lo, hi) = scratch.split_at_mut(dst as usize);
                    for ((d, &x), &y) in hi[..w as usize]
                        .iter_mut()
                        .zip(win(lo, a, w))
                        .zip(win(lo, b, w))
                    {
                        *d = x | y;
                    }
                }
                Op::Xor { dst, a, b, w } => {
                    let (lo, hi) = scratch.split_at_mut(dst as usize);
                    for ((d, &x), &y) in hi[..w as usize]
                        .iter_mut()
                        .zip(win(lo, a, w))
                        .zip(win(lo, b, w))
                    {
                        *d = x ^ y;
                    }
                }
                Op::Mux { dst, c, a, b, w } => {
                    let (lo, hi) = scratch.split_at_mut(dst as usize);
                    let sel = lo[c as usize];
                    for ((d, &x), &y) in hi[..w as usize]
                        .iter_mut()
                        .zip(win(lo, a, w))
                        .zip(win(lo, b, w))
                    {
                        *d = (sel & x) | (!sel & y);
                    }
                }
                Op::Eq { dst, a, aw, b, bw } => {
                    let mut acc = u64::MAX;
                    if aw == bw {
                        for (&x, &y) in win(scratch, a, aw).iter().zip(win(scratch, b, bw)) {
                            acc &= !(x ^ y);
                        }
                    } else {
                        for j in 0..aw.max(bw) as u32 {
                            acc &= !(bit1(scratch, a, aw, j) ^ bit1(scratch, b, bw, j));
                        }
                    }
                    scratch[dst as usize] = acc;
                }
                Op::Lt { dst, a, aw, b, bw } => {
                    let mut lt = 0u64;
                    let mut eqm = u64::MAX;
                    if aw == bw {
                        // MSB-first scan: a < b at the first differing bit.
                        for (&x, &y) in win(scratch, a, aw).iter().zip(win(scratch, b, bw)) {
                            lt |= eqm & !x & y;
                            eqm &= !(x ^ y);
                        }
                    } else {
                        for j in (0..aw.max(bw) as u32).rev() {
                            let av = bit1(scratch, a, aw, j);
                            let bv = bit1(scratch, b, bw, j);
                            lt |= eqm & !av & bv;
                            eqm &= !(av ^ bv);
                        }
                    }
                    scratch[dst as usize] = lt;
                }
                Op::Add {
                    dst,
                    a,
                    aw,
                    b,
                    bw,
                    w,
                } => {
                    let (lo, hi) = scratch.split_at_mut(dst as usize);
                    let (a, b) = (a as usize, b as usize);
                    let (w, aw, bw) = (w as usize, aw as usize, bw as usize);
                    let hi = &mut hi[..w];
                    // LSB-first ripple. While both operands have real bits
                    // the loop runs over plain reversed slices — no
                    // zero-extension checks, no bounds checks.
                    let m = w.min(aw).min(bw);
                    let mut carry = 0u64;
                    let xs = lo[a + aw - m..a + aw].iter().rev();
                    let ys = lo[b + bw - m..b + bw].iter().rev();
                    for ((d, &x), &y) in hi.iter_mut().rev().zip(xs).zip(ys) {
                        *d = x ^ y ^ carry;
                        carry = (x & y) | (carry & (x ^ y));
                    }
                    // Tail: at least one operand is exhausted (reads 0).
                    for j in m..w {
                        let x = if j < aw { lo[a + aw - 1 - j] } else { 0 };
                        let y = if j < bw { lo[b + bw - 1 - j] } else { 0 };
                        hi[w - 1 - j] = x ^ y ^ carry;
                        carry = (x & y) | (carry & (x ^ y));
                    }
                }
                Op::Sub {
                    dst,
                    a,
                    aw,
                    b,
                    bw,
                    w,
                } => {
                    let (lo, hi) = scratch.split_at_mut(dst as usize);
                    let (a, b) = (a as usize, b as usize);
                    let (w, aw, bw) = (w as usize, aw as usize, bw as usize);
                    let hi = &mut hi[..w];
                    let m = w.min(aw).min(bw);
                    let mut carry = u64::MAX; // the +1 of two's complement
                    let xs = lo[a + aw - m..a + aw].iter().rev();
                    let ys = lo[b + bw - m..b + bw].iter().rev();
                    for ((d, &x), &y) in hi.iter_mut().rev().zip(xs).zip(ys) {
                        let y = !y;
                        *d = x ^ y ^ carry;
                        carry = (x & y) | (carry & (x ^ y));
                    }
                    for j in m..w {
                        let x = if j < aw { lo[a + aw - 1 - j] } else { 0 };
                        let y = if j < bw {
                            !lo[b + bw - 1 - j]
                        } else {
                            u64::MAX
                        };
                        hi[w - 1 - j] = x ^ y ^ carry;
                        carry = (x & y) | (carry & (x ^ y));
                    }
                }
                Op::Copy { dst, a, w } => {
                    let (lo, hi) = scratch.split_at_mut(dst as usize);
                    hi[..w as usize].copy_from_slice(win(lo, a, w));
                }
                Op::Store { src, off, w } => {
                    for i in 0..w as u32 {
                        *next.word_mut((off + i) as usize, 0) = scratch[(src + i) as usize];
                    }
                }
            }
        }
    }
}

/// Value bit `j` (LSB-indexed) of a width-`aw` MSB-first operand at plane
/// `a`, zero-extended past its width.
#[inline]
fn operand_bit(
    scratch: &[u64],
    idx: &impl Fn(u32, usize) -> usize,
    a: u32,
    aw: u16,
    j: u32,
    k: usize,
) -> u64 {
    if j < aw as u32 {
        scratch[idx(a + (aw as u32 - 1 - j), k)]
    } else {
        0
    }
}

/// Where one (faulty sender, receiver) face of a round comes from.
///
/// A *face* is the state a faulty node shows one particular receiver this
/// round. Compiling a round program resolves every face to one of four
/// sources; two [`RoundFaces`] that resolve identically compile to the same
/// program, which is what makes the per-pattern program cache effective.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaceRef {
    /// Echo the current broadcast of honest node `i` (global index).
    Honest(u32),
    /// Echo what `donor` (global index, honest) broadcast `lag ≥ 1` rounds
    /// ago, served from the replay ring.
    Ring {
        /// Rounds back (1 = previous round).
        lag: u8,
        /// Honest donor's global node index.
        donor: u32,
    },
    /// A packed bundle (lane-uniform or per-lane constant states).
    Packed(u16),
    /// A per-round gather table materialised by the engine.
    Gather(u8),
}

/// The resolved faces of one round: `rows[g * n + v]` is what the `g`-th
/// faulty node shows receiver `v`.
///
/// Receivers that are themselves faulty still get a row (it is never read);
/// strategies fill them with any value, canonically `Honest(0)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct RoundFaces {
    /// Face sources, row-major over (faulty index, receiver).
    pub rows: Vec<FaceRef>,
}

impl RoundFaces {
    /// A face table of `faulty * n` rows, all `Honest(0)`.
    pub fn new(faulty: usize, n: usize) -> Self {
        RoundFaces {
            rows: vec![FaceRef::Honest(0); faulty * n],
        }
    }

    /// The face the `g`-th faulty node shows receiver `v`.
    pub fn face(&self, g: usize, n: usize, v: usize) -> FaceRef {
        self.rows[g * n + v]
    }

    /// Sets the face the `g`-th faulty node shows receiver `v`.
    pub fn set_face(&mut self, g: usize, n: usize, v: usize, face: FaceRef) {
        self.rows[g * n + v] = face;
    }
}

/// Per-node bundle layout of a sliced protocol arena.
///
/// Each node owns `state_bits + ext_bits + out_bits` consecutive planes:
/// the codec-encoded state, derived planes the lowering tracks
/// incrementally (e.g. divmod residues), and the lane-wise output field the
/// stabilisation detector reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SlicedLayout {
    /// Number of nodes.
    pub n: u32,
    /// Codec state width in bits (= planes).
    pub state_bits: u32,
    /// Derived planes carried per node.
    pub ext_bits: u32,
    /// Output field width in planes.
    pub out_bits: u32,
}

impl SlicedLayout {
    /// Planes per node bundle.
    pub fn node_planes(&self) -> u32 {
        self.state_bits + self.ext_bits + self.out_bits
    }

    /// Total planes of a full state arena.
    pub fn total_planes(&self) -> u32 {
        self.n * self.node_planes()
    }

    /// First plane of node `i`'s bundle.
    pub fn node_base(&self, i: u32) -> u32 {
        i * self.node_planes()
    }

    /// First plane of node `i`'s ext field.
    pub fn ext_base(&self, i: u32) -> u32 {
        self.node_base(i) + self.state_bits
    }

    /// First plane of node `i`'s output field.
    pub fn out_base(&self, i: u32) -> u32 {
        self.node_base(i) + self.state_bits + self.ext_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn pack_unpack_round_trip_ragged() {
        // 100 lanes over 2 lane words (ragged: 28 inactive lanes).
        let mut buf = PlaneBuf::new(11, 2);
        let mut rng = 0x1234_5678_9abc_def1u64;
        let mut originals = Vec::new();
        for lane in 0..100 {
            let mut bits = BitVec::new();
            bits.push_bits(xorshift(&mut rng) & 0x7ff, 11);
            buf.pack_lane(lane, 0, &bits);
            originals.push(bits);
        }
        for (lane, bits) in originals.iter().enumerate() {
            let mut out = BitVec::new();
            buf.unpack_lane(lane, 0, 11, &mut out);
            assert_eq!(&out, bits, "lane {lane}");
            assert_eq!(
                buf.read_value(lane, 0, 11),
                bits.reader().read_bits(11).unwrap()
            );
        }
    }

    #[test]
    fn fill_uniform_broadcasts_to_every_lane() {
        let mut buf = PlaneBuf::new(5, 3);
        let mut bits = BitVec::new();
        bits.push_bits(0b10110, 5);
        buf.fill_uniform(0, &bits);
        for lane in [0, 63, 64, 100, 191] {
            assert_eq!(buf.read_value(lane, 0, 5), 0b10110, "lane {lane}");
        }
    }

    /// Packs per-lane operands, runs one op, and checks every lane against
    /// scalar arithmetic.
    fn check_binop(op: Op, aw: u32, bw: u32, dst: u32, dw: u32, f: impl Fn(u64, u64) -> u64) {
        let arena = dst + dw;
        let mut cur = PlaneBuf::new((aw + bw) as usize, 2);
        let mut rng = 0x5eed_0000_0000_0001u64;
        let lanes = 128;
        let mut avs = Vec::new();
        let mut bvs = Vec::new();
        for lane in 0..lanes {
            let av = xorshift(&mut rng) & ((1 << aw) - 1);
            let bv = xorshift(&mut rng) & ((1 << bw) - 1);
            let mut bits = BitVec::new();
            bits.push_bits(av, aw);
            bits.push_bits(bv, bw);
            cur.pack_lane(lane, 0, &bits);
            avs.push(av);
            bvs.push(bv);
        }
        let prog = Program {
            ops: vec![
                Op::Load {
                    dst: 0,
                    space: Space::Cur,
                    off: 0,
                    w: aw as u16,
                },
                Op::Load {
                    dst: aw,
                    space: Space::Cur,
                    off: aw,
                    w: bw as u16,
                },
                op,
                Op::Store {
                    src: dst,
                    off: 0,
                    w: dw as u16,
                },
            ],
            arena_planes: arena,
        };
        let mut next = PlaneBuf::new(dw as usize, 2);
        let spaces = ExecSpaces {
            cur: &cur,
            ring: &[],
            packed: &[],
            gather: &[],
        };
        let mut scratch = Vec::new();
        prog.exec(&spaces, &mut next, &mut scratch);
        for lane in 0..lanes {
            let got = next.read_value(lane, 0, dw as usize);
            let want = f(avs[lane], bvs[lane]) & if dw == 64 { u64::MAX } else { (1 << dw) - 1 };
            assert_eq!(got, want, "lane {lane}: a={} b={}", avs[lane], bvs[lane]);
        }
    }

    #[test]
    fn add_matches_scalar_with_zero_extension() {
        check_binop(
            Op::Add {
                dst: 12,
                a: 0,
                aw: 7,
                b: 7,
                bw: 5,
                w: 8,
            },
            7,
            5,
            12,
            8,
            |a, b| a + b,
        );
    }

    #[test]
    fn sub_matches_scalar_modulo_width() {
        check_binop(
            Op::Sub {
                dst: 12,
                a: 0,
                aw: 6,
                b: 6,
                bw: 6,
                w: 6,
            },
            6,
            6,
            12,
            6,
            |a, b| a.wrapping_sub(b),
        );
    }

    #[test]
    fn eq_and_lt_match_scalar() {
        check_binop(
            Op::Eq {
                dst: 9,
                a: 0,
                aw: 4,
                b: 4,
                bw: 5,
            },
            4,
            5,
            9,
            1,
            |a, b| u64::from(a == b),
        );
        check_binop(
            Op::Lt {
                dst: 9,
                a: 0,
                aw: 4,
                b: 4,
                bw: 5,
            },
            4,
            5,
            9,
            1,
            |a, b| u64::from(a < b),
        );
    }

    #[test]
    fn mux_selects_per_lane() {
        // Operand a is 1 cond bit + 3 value bits; operand b is 3 value bits.
        check_binop(
            Op::Mux {
                dst: 7,
                c: 0,
                a: 1,
                b: 4,
                w: 3,
            },
            4,
            3,
            7,
            3,
            |a, b| if a >> 3 == 1 { a & 7 } else { b },
        );
    }

    #[test]
    fn const_and_logic_ops() {
        let cur = PlaneBuf::new(1, 1);
        let prog = Program {
            ops: vec![
                Op::Const {
                    dst: 0,
                    value: 0b1010,
                    w: 4,
                },
                Op::Const {
                    dst: 4,
                    value: 0b0110,
                    w: 4,
                },
                Op::And {
                    dst: 8,
                    a: 0,
                    b: 4,
                    w: 4,
                },
                Op::Or {
                    dst: 12,
                    a: 0,
                    b: 4,
                    w: 4,
                },
                Op::Xor {
                    dst: 16,
                    a: 0,
                    b: 4,
                    w: 4,
                },
                Op::Not {
                    dst: 20,
                    a: 0,
                    w: 4,
                },
                Op::Store {
                    src: 8,
                    off: 0,
                    w: 4,
                },
                Op::Store {
                    src: 12,
                    off: 4,
                    w: 4,
                },
                Op::Store {
                    src: 16,
                    off: 8,
                    w: 4,
                },
                Op::Store {
                    src: 20,
                    off: 12,
                    w: 4,
                },
            ],
            arena_planes: 24,
        };
        let mut next = PlaneBuf::new(16, 1);
        let spaces = ExecSpaces {
            cur: &cur,
            ring: &[],
            packed: &[],
            gather: &[],
        };
        prog.exec(&spaces, &mut next, &mut Vec::new());
        for lane in [0, 17, 63] {
            assert_eq!(next.read_value(lane, 0, 4), 0b0010);
            assert_eq!(next.read_value(lane, 4, 4), 0b1110);
            assert_eq!(next.read_value(lane, 8, 4), 0b1100);
            assert_eq!(next.read_value(lane, 12, 4), 0b0101);
        }
    }

    #[test]
    fn load_resolves_all_spaces() {
        let mut cur = PlaneBuf::new(2, 1);
        let mut ring0 = PlaneBuf::new(2, 1);
        let mut packed = PlaneBuf::new(2, 1);
        let mut gather = PlaneBuf::new(2, 1);
        for lane in 0..64 {
            cur.set_lane_bit(0, lane, lane % 2 == 0);
            ring0.set_lane_bit(0, lane, lane % 3 == 0);
            packed.set_lane_bit(0, lane, lane % 5 == 0);
            gather.set_lane_bit(0, lane, lane % 7 == 0);
        }
        let prog = Program {
            ops: vec![
                Op::Load {
                    dst: 0,
                    space: Space::Cur,
                    off: 0,
                    w: 1,
                },
                Op::Load {
                    dst: 1,
                    space: Space::Ring(1),
                    off: 0,
                    w: 1,
                },
                Op::Load {
                    dst: 2,
                    space: Space::Packed(0),
                    off: 0,
                    w: 1,
                },
                Op::Load {
                    dst: 3,
                    space: Space::Gather(0),
                    off: 0,
                    w: 1,
                },
                Op::Store {
                    src: 0,
                    off: 0,
                    w: 4,
                },
            ],
            arena_planes: 4,
        };
        let mut next = PlaneBuf::new(4, 1);
        let spaces = ExecSpaces {
            cur: &cur,
            ring: std::slice::from_ref(&ring0),
            packed: std::slice::from_ref(&packed),
            gather: std::slice::from_ref(&gather),
        };
        prog.exec(&spaces, &mut next, &mut Vec::new());
        for lane in 0..64 {
            assert_eq!(next.lane_bit(0, lane), lane % 2 == 0);
            assert_eq!(next.lane_bit(1, lane), lane % 3 == 0);
            assert_eq!(next.lane_bit(2, lane), lane % 5 == 0);
            assert_eq!(next.lane_bit(3, lane), lane % 7 == 0);
        }
    }

    #[test]
    fn layout_offsets() {
        let l = SlicedLayout {
            n: 4,
            state_bits: 12,
            ext_bits: 3,
            out_bits: 5,
        };
        assert_eq!(l.node_planes(), 20);
        assert_eq!(l.total_planes(), 80);
        assert_eq!(l.node_base(2), 40);
        assert_eq!(l.ext_base(2), 52);
        assert_eq!(l.out_base(2), 55);
    }
}
