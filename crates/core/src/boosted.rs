//! The resilience-boosting construction (Theorem 1, §3).

use rand::{Rng, RngCore};
use sc_consensus::instructions::{execute_slot, IncrementMode};
use sc_consensus::{PkRegisters, INFINITY};
use sc_protocol::{majority_or, MessageView, NodeId, ParamError, StepContext, Tally};

use crate::algorithm::{Algorithm, CounterState};
use crate::params::BoostParams;

/// One application of Theorem 1: a `C`-counter on `N = k·n` nodes tolerating
/// `F < (f+1)·⌈k/2⌉` faults, built from `k` block-local copies of an
/// `(n, f)`-counter.
///
/// Every round, node `v = (i, j)` (§3.5):
///
/// 1. advances its block's copy `A_i` of the inner counter on the states
///    received from its own block;
/// 2. interprets every received inner counter through the `(r, y, b)`
///    decomposition of §3.2 and takes the three-stage majority vote of §3.3
///    — per-block leader support `bᵢ`, global leader block `B`, and the
///    leader's slot counter `R`;
/// 3. executes instruction set `I_R` of the phase-king protocol (Table 2)
///    in counting mode on its `(a, d)` registers.
///
/// Once some honest-king group runs to completion inside a window where `R`
/// is common and incrementing (Lemmas 2–4), all correct registers agree and
/// count modulo `C` forever (Lemma 5).
///
/// Constructed via [`Algorithm::boosted`] or [`crate::CounterBuilder`].
#[derive(Clone, Debug)]
pub struct BoostedCounter {
    inner: Algorithm,
    params: BoostParams,
}

/// One node's view of the three-stage majority vote of §3.3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VoteObservation {
    /// `bᵢ` — the leader block each block currently supports (majority of
    /// its members' pointers; 0 when no majority exists).
    pub block_support: Vec<u64>,
    /// `B` — the elected leader block.
    pub leader: usize,
    /// `R` — the leader block's slot counter, selecting the phase-king
    /// instruction set `I_R`.
    pub slot: u64,
}

/// Per-node state of a [`BoostedCounter`]: the inner counter state plus the
/// phase-king registers — exactly the `S(A) + ⌈log(C+1)⌉ + 1` bits of
/// Theorem 1.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BoostedState {
    /// State of the block-local inner counter.
    pub inner: CounterState,
    /// Phase-king registers `(a, d)`.
    pub regs: PkRegisters,
}

impl BoostedCounter {
    /// Wraps `inner` with the boosting layer described by `params`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when `inner` does not match `params`: its size
    /// must equal `params.n_inner()`, its resilience must be at least
    /// `params.f_inner()`, and its modulus must be a multiple of
    /// `params.c_req()`.
    pub fn new(inner: Algorithm, params: BoostParams) -> Result<Self, ParamError> {
        use sc_protocol::{Counter as _, SyncProtocol as _};
        if inner.n() != params.n_inner() {
            return Err(ParamError::constraint(format!(
                "inner counter has {} nodes, blocks have {}",
                inner.n(),
                params.n_inner()
            )));
        }
        if inner.resilience() < params.f_inner() {
            return Err(ParamError::constraint(format!(
                "inner counter tolerates {} faults, construction assumes {}",
                inner.resilience(),
                params.f_inner()
            )));
        }
        if !inner.modulus().is_multiple_of(params.c_req()) {
            return Err(ParamError::constraint(format!(
                "inner modulus {} is not a multiple of c_req = {}",
                inner.modulus(),
                params.c_req()
            )));
        }
        Ok(BoostedCounter { inner, params })
    }

    /// The inner counter run by every block.
    pub fn inner(&self) -> &Algorithm {
        &self.inner
    }

    /// The construction parameters.
    pub fn params(&self) -> &BoostParams {
        &self.params
    }

    /// The raw inner counter value a node in `block` announces with `state`,
    /// i.e. `h(j, state)` before any block-modulus reduction. Also the
    /// shared definition the prepared fast path votes with.
    pub(crate) fn inner_value(&self, local: usize, state: &CounterState) -> u64 {
        use sc_protocol::SyncProtocol as _;
        self.inner.output(NodeId::new(local), state)
    }

    /// The three-stage majority vote of §3.3 as computed from a received
    /// state vector: per-block leader support `bᵢ`, the elected leader
    /// block `B`, and its slot counter `R`.
    ///
    /// This is exactly the voting step of the transition function, exposed
    /// for instrumentation — Lemma 3 (all correct nodes eventually share an
    /// incrementing `R` for ≥ τ rounds) is verified live against these
    /// observations in the integration tests and the E2 harness.
    pub fn observe(&self, view: &MessageView<'_, CounterState>) -> VoteObservation {
        let p = &self.params;
        let k = p.k();
        let n = p.n_inner();

        // bᵢ = majority{ b[i, j] : j ∈ [n] } for every block i.
        let mut block_support = Vec::with_capacity(k);
        for i in 0..k {
            let votes = (0..n).map(|j| {
                let state = view.get(p.member(i, j));
                let value = self.inner_value(j, state.as_boosted_inner());
                p.pointer(i, value).b as u64
            });
            block_support.push(majority_or(votes, 0));
        }

        // B = majority{ bᵢ : i ∈ [k] }.
        let leader = majority_or(block_support.iter().copied(), 0) as usize;

        // R = majority{ r[B, j] : j ∈ [n] }.
        let slots = (0..n).map(|j| {
            let state = view.get(p.member(leader, j));
            let value = self.inner_value(j, state.as_boosted_inner());
            p.pointer(leader, value).r
        });
        let slot = majority_or(slots, 0);
        VoteObservation {
            block_support,
            leader,
            slot,
        }
    }

    /// The slot counter `R` this node derives from `view` (§3.3).
    pub(crate) fn vote_slot(&self, view: &MessageView<'_, CounterState>) -> u64 {
        self.observe(view).slot
    }

    /// The transition of node `v` (§3.5). Called through
    /// [`Algorithm::step`](sc_protocol::SyncProtocol::step).
    pub(crate) fn step(
        &self,
        node: NodeId,
        view: &MessageView<'_, CounterState>,
        ctx: &mut StepContext<'_>,
    ) -> BoostedState {
        use sc_protocol::SyncProtocol as _;
        let p = &self.params;
        let (block, local) = p.block_of(node);

        // 1. Advance this block's copy of the inner counter. The block view
        // is a zero-copy projection of the outer view: it borrows the inner
        // states in place instead of deep-cloning `n` nested states per
        // receiver per round (the recursion multiplies those clones).
        let block_refs: Vec<&CounterState> = (0..p.n_inner())
            .map(|j| view.get(p.member(block, j)).as_boosted_inner())
            .collect();
        let block_view = MessageView::from_refs(&block_refs, &[]);
        let next_inner = self.inner.step(NodeId::new(local), &block_view, ctx);

        // 2. Majority-vote the current slot R.
        let slot = self.vote_slot(view);

        // 3. Execute instruction set I_R in counting mode.
        let tally: Tally = view.iter().map(|s| s.as_boosted().regs.a).collect();
        let king = p.pk().king_of_group(slot / 3);
        let king_value = view.get(king).as_boosted().regs.a;
        let me = view.get(node).as_boosted();
        let regs = execute_slot(
            p.pk(),
            me.regs,
            slot,
            &tally,
            king_value,
            IncrementMode::Counting,
        );

        BoostedState {
            inner: next_inner,
            regs,
        }
    }

    /// Samples an arbitrary representable state (for self-stabilisation
    /// testing and adversarial message fabrication).
    pub(crate) fn random_state(&self, node: NodeId, rng: &mut dyn RngCore) -> BoostedState {
        use sc_protocol::SyncProtocol as _;
        let (_, local) = self.params.block_of(node);
        let inner = self.inner.random_state(NodeId::new(local), rng);
        let c = self.params.c_out();
        let a = if rng.random_bool(0.125) {
            INFINITY
        } else {
            rng.random_range(0..c)
        };
        BoostedState {
            inner,
            regs: PkRegisters::new(a, rng.random_bool(0.5)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CounterBuilder;
    use sc_protocol::{Counter as _, SyncProtocol as _};

    #[test]
    fn construction_validates_the_inner_counter() {
        let params = BoostParams::new(1, 0, 4, 1, 8, 0).unwrap();
        // Wrong modulus: trivial counter must count mod a multiple of 2304.
        let bad = Algorithm::trivial(100).unwrap();
        assert!(BoostedCounter::new(bad, params.clone()).is_err());
        // Wrong size.
        let params12 = BoostParams::new(3, 0, 4, 1, 8, 0).unwrap();
        let small = Algorithm::trivial(params12.c_req()).unwrap();
        assert!(BoostedCounter::new(small, params12).is_err());
        // Correct.
        let good = Algorithm::trivial(2304).unwrap();
        assert!(BoostedCounter::new(good, params).is_ok());
    }

    #[test]
    fn theorem_1_cost_recurrences_hold() {
        // The next level (k = 3, F = 3) needs an inner modulus divisible by
        // c_req = 3(F+2)(2m)^k = 15 * 64 = 960.
        let a4 = CounterBuilder::corollary1(1, 960).unwrap().build().unwrap();
        let b = Algorithm::boosted(a4.clone(), 3, 3, 16, 0).unwrap();
        // S(B) = S(A) + ⌈log(C+1)⌉ + 1.
        assert_eq!(
            b.state_bits(),
            a4.state_bits() + sc_protocol::bits_for(17) + 1
        );
        // T(B) = T(A) + 3(F+2)(2m)^k.
        assert_eq!(b.stabilization_bound(), a4.stabilization_bound() + 960);
        assert_eq!(b.n(), 12);
        assert_eq!(b.resilience(), 3);
        assert_eq!(b.modulus(), 16);
    }
}
