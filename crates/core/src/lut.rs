//! Table-driven small counters.
//!
//! For small parameters the synchronous counting problem "is amenable to
//! algorithm synthesis" (§1): the works [4, 5] cited by the paper used
//! computers to design optimal algorithms such as a 3-state counter for
//! `n ≥ 4, f = 1`. A [`LutCounter`] is the executable form of such an
//! algorithm — explicit lookup tables for the transition function
//! `g : [n] × Xⁿ → X` and output function `h : [n] × X → [c]`. The
//! `sc-verifier` crate model-checks these tables exhaustively and searches
//! for new ones.

use sc_protocol::{bits_for, ParamError};

/// Raw description of a table-driven counter.
///
/// Received state vectors are indexed in little-endian node order:
/// `index = Σ_{u ∈ [n]} x_u · |X|^u`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LutSpec {
    /// Number of nodes `n`.
    pub n: usize,
    /// Claimed resilience `f`.
    pub f: usize,
    /// Counter modulus `c`.
    pub c: u64,
    /// Number of states `|X|`.
    pub states: u8,
    /// Transition tables: `transition[v][index] = g(v, x)`.
    pub transition: Vec<Vec<u8>>,
    /// Output tables: `output[v][s] = h(v, s)`.
    pub output: Vec<Vec<u64>>,
    /// Claimed stabilisation time `T(A)` (e.g. established by the verifier).
    pub stabilization_bound: u64,
}

/// A synchronous counter given by explicit lookup tables.
///
/// # Example
///
/// A hand-written 1-node 2-counter (the trivial counter as a table):
///
/// ```
/// use sc_core::{LutCounter, LutSpec};
///
/// let spec = LutSpec {
///     n: 1,
///     f: 0,
///     c: 2,
///     states: 2,
///     transition: vec![vec![1, 0]], // g(0, [0]) = 1, g(0, [1]) = 0
///     output: vec![vec![0, 1]],
///     stabilization_bound: 0,
/// };
/// let lut = LutCounter::new(spec)?;
/// assert_eq!(lut.next(0, &[1]), 0);
/// # Ok::<(), sc_protocol::ParamError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LutCounter {
    spec: LutSpec,
    /// `states^u` for `u ∈ [n]`, for radix indexing.
    pow: Vec<usize>,
}

/// Largest supported table size (`|X|^n` entries per node).
const MAX_TABLE: usize = 1 << 22;

impl LutCounter {
    /// Validates the tables and wraps them as a counter.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when dimensions are inconsistent, entries are
    /// out of range, `c < 2`, `3f ≥ n`, or the table would exceed the
    /// supported size.
    pub fn new(spec: LutSpec) -> Result<Self, ParamError> {
        if spec.n == 0 {
            return Err(ParamError::constraint(
                "LUT counter needs at least one node",
            ));
        }
        if spec.n > 1 && 3 * spec.f >= spec.n {
            return Err(ParamError::constraint(format!(
                "resilience f = {} requires n > 3f, got n = {}",
                spec.f, spec.n
            )));
        }
        if spec.c < 2 {
            return Err(ParamError::constraint("counter modulus must be ≥ 2"));
        }
        if spec.states == 0 {
            return Err(ParamError::constraint("state space must be non-empty"));
        }
        let rows = (spec.states as usize)
            .checked_pow(spec.n as u32)
            .filter(|&r| r <= MAX_TABLE)
            .ok_or_else(|| ParamError::overflow(format!("|X|^n = {}^{}", spec.states, spec.n)))?;
        if spec.transition.len() != spec.n || spec.output.len() != spec.n {
            return Err(ParamError::constraint(
                "one transition and output table per node",
            ));
        }
        for v in 0..spec.n {
            if spec.transition[v].len() != rows {
                return Err(ParamError::constraint(format!(
                    "transition table of node {v} has {} rows, expected {rows}",
                    spec.transition[v].len()
                )));
            }
            if spec.transition[v].iter().any(|&s| s >= spec.states) {
                return Err(ParamError::constraint(format!(
                    "transition table of node {v} names a state ≥ |X|"
                )));
            }
            if spec.output[v].len() != spec.states as usize {
                return Err(ParamError::constraint(format!(
                    "output table of node {v} must have |X| entries"
                )));
            }
            if spec.output[v].iter().any(|&o| o >= spec.c) {
                return Err(ParamError::constraint(format!(
                    "output table of node {v} names a value ≥ c"
                )));
            }
        }
        let pow = (0..spec.n)
            .map(|u| (spec.states as usize).pow(u as u32))
            .collect();
        Ok(LutCounter { spec, pow })
    }

    /// The underlying tables.
    pub fn spec(&self) -> &LutSpec {
        &self.spec
    }

    /// Number of states `|X|`.
    pub fn states(&self) -> u8 {
        self.spec.states
    }

    /// The transition `g(node, received)`.
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != n` or a state is out of range (only
    /// reachable through fabricated states, which [`LutCounter::clamp`]
    /// prevents).
    pub fn next(&self, node: usize, received: &[u8]) -> u8 {
        assert_eq!(received.len(), self.spec.n);
        let index: usize = received
            .iter()
            .enumerate()
            .map(|(u, &s)| {
                assert!(s < self.spec.states, "state {s} out of range");
                self.pow[u] * s as usize
            })
            .sum();
        self.spec.transition[node][index]
    }

    /// The output `h(node, state)`.
    pub fn output(&self, node: usize, state: u8) -> u64 {
        self.spec.output[node][state as usize % self.spec.states as usize]
    }

    /// Replaces one transition-table entry in place, returning the previous
    /// value — the synthesiser's mutate/undo hook: a candidate is evaluated
    /// by patching ≤ 3 entries of the live counter and un-patching them on
    /// rejection, never by cloning the tables.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `row` is out of range, or `state ≥ |X|` (which
    /// would break the validation invariant established by
    /// [`LutCounter::new`]).
    pub fn set_transition(&mut self, node: usize, row: usize, state: u8) -> u8 {
        assert!(
            state < self.spec.states,
            "state {state} out of range for |X| = {}",
            self.spec.states
        );
        std::mem::replace(&mut self.spec.transition[node][row], state)
    }

    /// Reduces an arbitrary byte to a valid state (for fabricated inputs).
    pub fn clamp(&self, raw: u8) -> u8 {
        raw % self.spec.states
    }

    /// Space `⌈log₂ |X|⌉` bits.
    pub fn state_bits(&self) -> u32 {
        bits_for(u64::from(self.spec.states))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_spec() -> LutSpec {
        // 2 nodes, 2 states; both nodes: adopt XOR of received states, output
        // identity. Not a correct counter; used to test plumbing only.
        LutSpec {
            n: 2,
            f: 0,
            c: 2,
            states: 2,
            transition: vec![vec![0, 1, 1, 0], vec![0, 1, 1, 0]],
            output: vec![vec![0, 1], vec![0, 1]],
            stabilization_bound: 4,
        }
    }

    #[test]
    fn radix_indexing_is_little_endian() {
        let lut = LutCounter::new(two_node_spec()).unwrap();
        // received = [x0, x1] → index x0 + 2·x1.
        assert_eq!(lut.next(0, &[1, 0]), 1);
        assert_eq!(lut.next(0, &[0, 1]), 1);
        assert_eq!(lut.next(0, &[1, 1]), 0);
    }

    #[test]
    fn validation_catches_dimension_errors() {
        let mut bad = two_node_spec();
        bad.transition[1].pop();
        assert!(LutCounter::new(bad).is_err());

        let mut bad = two_node_spec();
        bad.transition[0][2] = 2; // state out of range
        assert!(LutCounter::new(bad).is_err());

        let mut bad = two_node_spec();
        bad.output[0] = vec![0, 2]; // output ≥ c
        assert!(LutCounter::new(bad).is_err());

        let mut bad = two_node_spec();
        bad.c = 1;
        assert!(LutCounter::new(bad).is_err());
    }

    #[test]
    fn resilience_requires_n_over_3f() {
        let mut bad = two_node_spec();
        bad.f = 1; // n = 2 ≤ 3
        assert!(LutCounter::new(bad).is_err());
    }

    #[test]
    fn set_transition_patches_and_returns_previous() {
        let mut lut = LutCounter::new(two_node_spec()).unwrap();
        assert_eq!(lut.next(0, &[1, 0]), 1);
        assert_eq!(lut.set_transition(0, 1, 0), 1);
        assert_eq!(lut.next(0, &[1, 0]), 0);
        // Undo restores the original table.
        assert_eq!(lut.set_transition(0, 1, 1), 0);
        assert_eq!(lut, LutCounter::new(two_node_spec()).unwrap());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_transition_rejects_invalid_state() {
        LutCounter::new(two_node_spec())
            .unwrap()
            .set_transition(0, 0, 2);
    }

    #[test]
    fn clamp_reduces_modulo_states() {
        let lut = LutCounter::new(two_node_spec()).unwrap();
        assert_eq!(lut.clamp(7), 1);
        assert_eq!(lut.state_bits(), 1);
    }
}
