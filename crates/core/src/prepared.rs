//! Receiver-shared round preparation for the recursive counters
//! ([`PreparedProtocol`]).
//!
//! One round of the boosting construction (§3.3–§3.5) takes, *per
//! receiver*, three layers of majority votes over the received vector:
//! per-block leader support `bᵢ`, the leader block `B` with its slot
//! counter `R`, and the phase-king tally of `a`-registers. All receivers
//! see identical honest entries — only the ≤ `F` Byzantine senders differ
//! per receiver — so the honest part of every one of those tallies is
//! computed **once per round** here, and each receiver merely patches the
//! faulty senders' votes in (and back out) via [`DeltaTally`]: `O(F)` vote
//! work per receiver instead of `O(N)`, recursively at every level of the
//! construction.
//!
//! The contract (bitwise equality with [`SyncProtocol::step`]) is enforced
//! by the `engine_equivalence` integration tests.

use sc_consensus::instructions::{execute_slot, IncrementMode};
use sc_protocol::{
    Broadcast, DeltaTally, MessageView, NodeId, PreparedProtocol, StepContext, SyncProtocol,
    VoteCounts as _,
};

use crate::algorithm::{Algorithm, CounterState};
use crate::boosted::{BoostedCounter, BoostedState};

/// Shared per-round state of an [`Algorithm`]; variants mirror the
/// algorithm variants.
#[derive(Clone, Debug)]
pub enum RoundPrep {
    /// Trivial and LUT counters have no receiver-shared vote structure
    /// worth hoisting; their prepared step falls through to the plain one.
    Passthrough,
    /// Hoisted vote tallies of a boosting layer.
    Boosted(Box<BoostedPrep>),
}

/// The hoisted round state of one boosting layer (and, recursively, of the
/// inner counters of its blocks).
#[derive(Clone, Debug)]
pub struct BoostedPrep {
    /// Per block `i`: the leader-support votes (`pointer(i, ·).b`) of the
    /// block's *honest* members.
    b_votes: Vec<DeltaTally>,
    /// Per block `i`: the slot votes (`pointer(i, ·).r`) of the block's
    /// honest members.
    r_votes: Vec<DeltaTally>,
    /// `a`-register votes of all honest nodes.
    a_votes: DeltaTally,
    /// Faulty members of each block, flat (outer) ids, sorted.
    faulty_by_block: Vec<Vec<NodeId>>,
    /// Per block: the inner algorithm's round preparation.
    inner: Vec<RoundPrep>,
    /// Scratch for one receiver's patch values (computed once, used for
    /// both the add and the undo pass).
    patch: Vec<u64>,
    /// Scratch for one receiver's per-block leader-support votes `bᵢ`.
    support: Vec<u64>,
}

/// Strict majority with a default, over a handful of stack values — the
/// `B = majority{bᵢ}` vote, allocation-free. Matches
/// [`sc_protocol::majority_or`] exactly (the strict-majority winner is
/// unique when it exists).
fn small_majority_or(values: &[u64], default: u64) -> u64 {
    let total = values.len();
    for &candidate in values {
        let count = values.iter().filter(|&&v| v == candidate).count();
        if 2 * count > total {
            return candidate;
        }
    }
    default
}

impl BoostedCounter {
    fn prepare(&self, base: Broadcast<'_, CounterState>, faulty: &[NodeId]) -> BoostedPrep {
        let p = self.params();
        let (k, n) = (p.k(), p.n_inner());

        let mut faulty_by_block: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for &id in faulty {
            faulty_by_block[p.block_of(id).0].push(id);
        }

        let mut b_votes = Vec::with_capacity(k);
        let mut r_votes = Vec::with_capacity(k);
        let mut inner_preps = Vec::with_capacity(k);
        let mut a_votes = DeltaTally::new();
        for i in 0..k {
            let mut b_tally = DeltaTally::new();
            let mut r_tally = DeltaTally::new();
            let mut block_refs: Vec<&CounterState> = Vec::with_capacity(n);
            let mut local_faulty: Vec<NodeId> = Vec::with_capacity(faulty_by_block[i].len());
            for j in 0..n {
                let member = p.member(i, j);
                let state = base.get(member.index());
                block_refs.push(state.as_boosted_inner());
                if faulty_by_block[i].binary_search(&member).is_ok() {
                    local_faulty.push(NodeId::new(j));
                    continue;
                }
                let pointer = p.pointer(i, self.inner_value(j, state.as_boosted_inner()));
                b_tally.add(pointer.b as u64);
                r_tally.add(pointer.r);
                a_votes.add(state.as_boosted().regs.a);
            }
            b_votes.push(b_tally);
            r_votes.push(r_tally);
            inner_preps.push(
                self.inner()
                    .prepare_round(Broadcast::Refs(&block_refs), &local_faulty),
            );
        }
        BoostedPrep {
            b_votes,
            r_votes,
            a_votes,
            faulty_by_block,
            inner: inner_preps,
            patch: Vec::with_capacity(faulty.len()),
            support: Vec::with_capacity(k),
        }
    }

    /// The transition of §3.5 with the shared votes patched per receiver.
    /// Must agree bitwise with [`BoostedCounter::step`]; `prep` is restored
    /// before returning.
    fn step_with(
        &self,
        node: NodeId,
        view: &MessageView<'_, CounterState>,
        prep: &mut BoostedPrep,
        ctx: &mut StepContext<'_>,
    ) -> BoostedState {
        let p = self.params();
        let (block, local) = p.block_of(node);
        let k = p.k();

        // 1. Advance this block's copy of the inner counter (recursively
        // prepared). The projection borrows states in place, like `step`.
        let block_refs: Vec<&CounterState> = (0..p.n_inner())
            .map(|j| view.get(p.member(block, j)).as_boosted_inner())
            .collect();
        let block_view = MessageView::from_refs(&block_refs, &[]);
        let next_inner = self.inner().step_prepared(
            NodeId::new(local),
            &block_view,
            &mut prep.inner[block],
            ctx,
        );

        // 2. The three-stage majority vote, patching only faulty senders.
        // Each patch's values are computed once into the scratch buffer and
        // reused for the undo pass. bᵢ per block, then B over them.
        let mut support = std::mem::take(&mut prep.support);
        support.clear();
        for i in 0..k {
            let mut patch = std::mem::take(&mut prep.patch);
            patch.clear();
            for &member in &prep.faulty_by_block[i] {
                let (_, j) = p.block_of(member);
                let state = view.get(member).as_boosted_inner();
                patch.push(p.pointer(i, self.inner_value(j, state)).b as u64);
            }
            let tally = &mut prep.b_votes[i];
            for &vote in &patch {
                tally.add(vote);
            }
            support.push(tally.majority().unwrap_or(0));
            for &vote in &patch {
                tally.remove(vote);
            }
            prep.patch = patch;
        }
        let leader = small_majority_or(&support, 0) as usize;
        support.clear();
        prep.support = support;

        // R = majority of the leader block's slot votes.
        let slot = {
            let mut patch = std::mem::take(&mut prep.patch);
            patch.clear();
            for &member in &prep.faulty_by_block[leader] {
                let (_, j) = p.block_of(member);
                let state = view.get(member).as_boosted_inner();
                patch.push(p.pointer(leader, self.inner_value(j, state)).r);
            }
            let tally = &mut prep.r_votes[leader];
            for &vote in &patch {
                tally.add(vote);
            }
            let slot = tally.majority().unwrap_or(0);
            for &vote in &patch {
                tally.remove(vote);
            }
            prep.patch = patch;
            slot
        };

        // 3. Instruction set I_R on the patched a-register tally.
        let mut patch = std::mem::take(&mut prep.patch);
        patch.clear();
        for faulty in prep.faulty_by_block.iter().flatten() {
            patch.push(view.get(*faulty).as_boosted().regs.a);
        }
        for &vote in &patch {
            prep.a_votes.add(vote);
        }
        let king = p.pk().king_of_group(slot / 3);
        let king_value = view.get(king).as_boosted().regs.a;
        let me = view.get(node).as_boosted();
        let regs = execute_slot(
            p.pk(),
            me.regs,
            slot,
            &prep.a_votes,
            king_value,
            IncrementMode::Counting,
        );
        for &vote in &patch {
            prep.a_votes.remove(vote);
        }
        patch.clear();
        prep.patch = patch;

        BoostedState {
            inner: next_inner,
            regs,
        }
    }
}

impl PreparedProtocol for Algorithm {
    type RoundPrep = RoundPrep;

    fn prepare_round(&self, base: Broadcast<'_, CounterState>, faulty: &[NodeId]) -> RoundPrep {
        match self {
            Algorithm::Trivial(_) | Algorithm::Lut(_) => RoundPrep::Passthrough,
            Algorithm::Boosted(b) => RoundPrep::Boosted(Box::new(b.prepare(base, faulty))),
        }
    }

    fn step_prepared(
        &self,
        node: NodeId,
        view: &MessageView<'_, CounterState>,
        prep: &mut RoundPrep,
        ctx: &mut StepContext<'_>,
    ) -> CounterState {
        match (self, prep) {
            (Algorithm::Boosted(b), RoundPrep::Boosted(prep)) => {
                CounterState::Boosted(Box::new(b.step_with(node, view, prep, ctx)))
            }
            (algo, RoundPrep::Passthrough) => algo.step(node, view, ctx),
            (_, RoundPrep::Boosted(_)) => {
                panic!("round preparation belongs to a different algorithm kind")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CounterBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn small_majority_matches_majority_or() {
        use sc_protocol::majority_or;
        let cases: &[&[u64]] = &[
            &[],
            &[3],
            &[1, 1, 2],
            &[1, 2, 3],
            &[2, 2, 1, 1],
            &[0, 0, 0, 5, 5],
        ];
        for values in cases {
            assert_eq!(
                small_majority_or(values, 7),
                majority_or(values.iter().copied(), 7),
                "{values:?}"
            );
        }
    }

    /// Fault-free single-round agreement between `step` and `step_prepared`
    /// on the A(4,1) construction from arbitrary configurations. (The full
    /// multi-round, multi-adversary gate lives in the `engine_equivalence`
    /// integration tests.)
    #[test]
    fn prepared_step_matches_plain_step() {
        let algo = CounterBuilder::corollary1(1, 2).unwrap().build().unwrap();
        for seed in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let states: Vec<CounterState> = (0..4)
                .map(|i| algo.random_state(NodeId::new(i), &mut rng))
                .collect();
            let mut prep = algo.prepare_round(Broadcast::States(&states), &[]);
            for i in 0..4 {
                let view = MessageView::new(&states, &[]);
                let mut rng_a = SmallRng::seed_from_u64(0);
                let mut rng_b = SmallRng::seed_from_u64(0);
                let plain = algo.step(NodeId::new(i), &view, &mut StepContext::new(&mut rng_a));
                let prepared = algo.step_prepared(
                    NodeId::new(i),
                    &view,
                    &mut prep,
                    &mut StepContext::new(&mut rng_b),
                );
                assert_eq!(plain, prepared, "node {i} seed {seed}");
            }
        }
    }

    /// The patch-and-undo discipline must leave the preparation unchanged,
    /// including with faulty senders present.
    #[test]
    fn prepared_step_restores_the_preparation() {
        let algo = CounterBuilder::corollary1(1, 2).unwrap().build().unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let states: Vec<CounterState> = (0..4)
            .map(|i| algo.random_state(NodeId::new(i), &mut rng))
            .collect();
        let faulty = [NodeId::new(2)];
        let lie = algo.random_state(NodeId::new(2), &mut rng);
        let overrides = [(NodeId::new(2), lie)];
        let mut prep = algo.prepare_round(Broadcast::States(&states), &faulty);
        let snapshot = format!("{prep:?}");
        for i in [0usize, 1, 3] {
            let view = MessageView::new(&states, &overrides);
            let mut rng = SmallRng::seed_from_u64(0);
            let _ = algo.step_prepared(
                NodeId::new(i),
                &view,
                &mut prep,
                &mut StepContext::new(&mut rng),
            );
            assert_eq!(format!("{prep:?}"), snapshot, "receiver {i} leaked patches");
        }
    }
}
