//! Lowering [`Algorithm`] transitions to bit-sliced round programs.
//!
//! This is the compiler half of the sliced execution engine: given a counter
//! of the paper's family and a fault set, [`SlicedAlgorithm`] emits one
//! [`Program`] per distinct adversarial face pattern, advancing 64 scenarios
//! per machine word through the *exact* transition of §3–§4:
//!
//! * the trivial counter increments as a mux'd adder;
//! * LUT counters become one-hot row selectors over their tables;
//! * the boosted transition lowers the three-stage majority vote of §3.3 to
//!   popcount/threshold networks and the phase-king instruction sets of
//!   Table 2 to comparator trees over the *encoded* register domain, where
//!   the codec's `∞ ↦ C` mapping turns `min{C, a[ℓ]}` into the identity and
//!   the two increment flavours (guarded on `∞`, unguarded after a king
//!   adoption) into small mux networks.
//!
//! Two structural tricks keep programs small. With `m = ⌈k/2⌉ = 2` blocks
//! worth of leader candidates (every stack built by [`crate::CounterBuilder`]
//! has `k ∈ {3, 4}`), the leader pointer `b = (⌊v/τ⌋ / (2m)^i) mod m` of a
//! member of block `i` is just *bit `2i`* of the quotient `⌊v/τ⌋`, so block
//! support votes are single-plane popcounts. And for the innermost trivial
//! counter the lowering tracks `(⌊v/τ⌋, v mod τ)` incrementally in derived
//! "ext" planes of each bundle — updated by two mux'd adders per round
//! instead of a restoring division per member per compile.
//!
//! The scalar engine stays the oracle: `SlicedBatch` runs produce verdicts
//! through the same [`sc_sim::OnlineDetector`], and the tests here assert
//! bundle-for-bundle equality against [`Algorithm::step`] on every stack of
//! the paper's Figure 2.

use std::collections::HashMap;
use std::sync::Arc;

use sc_protocol::{
    bits_for, BitVec, Counter, FaceRef, NodeId, Program, RoundFaces, SlicedLayout, Space,
    SyncProtocol,
};
use sc_sim::{RoundProgramSource, SlicedProtocol};

use crate::algorithm::Algorithm;
use crate::boosted::BoostedCounter;
use crate::dag::{Builder, NodeRef};
use crate::params::BoostParams;

/// Largest LUT row count (`|X|^n`) the lowering will unroll into one-hot
/// selectors; larger tables fall back to the scalar engine.
const MAX_LUT_ROWS: u64 = 4096;

/// Round-program cache capacity. Search loops mutate scripts between
/// evaluations, so the stream of distinct face tables is unbounded; when
/// the cache fills it is dropped wholesale (hot tables recompile in one
/// round) rather than tracking recency per entry.
const MAX_CACHED_PROGRAMS: usize = 512;

/// Derived-plane tracking for the innermost trivial counter: its value `v`
/// is carried alongside as `(q, r) = (⌊v/τ⌋, v mod τ)` w.r.t. the parent
/// boosting layer's slot period `τ`, so the §3.2 pointer decomposition reads
/// ext planes instead of dividing.
#[derive(Clone, Copy, Debug)]
struct ExtSpec {
    /// Parent slot period `τ`.
    tau: u64,
    /// Quotient width: `v < c` and `c/τ` is a power of two, so `q` wraps
    /// naturally in `log₂(c/τ)` planes.
    qw: u16,
    /// Remainder width `bits_for(τ)`.
    rw: u16,
    /// Codec width of the trivial value (offset 0 of every bundle).
    trivial_bits: u16,
}

/// The ext planes apply when the innermost base is a trivial counter under
/// at least one boosting layer and its modulus is `τ · 2^j` — true for every
/// `CounterBuilder` stack, where `c = c_req = τ(2m)^k`.
fn ext_spec(algo: &Algorithm) -> Option<ExtSpec> {
    let mut parent: Option<&BoostedCounter> = None;
    let mut cur = algo;
    while let Algorithm::Boosted(b) = cur {
        parent = Some(b);
        cur = b.inner();
    }
    let (p, t) = match (parent, cur) {
        (Some(p), Algorithm::Trivial(t)) => (p, t),
        _ => return None,
    };
    let tau = p.params().tau();
    let c = t.modulus();
    if c % tau != 0 || !(c / tau).is_power_of_two() || c == tau {
        return None;
    }
    Some(ExtSpec {
        tau,
        qw: bits_for(c / tau) as u16,
        rw: bits_for(tau) as u16,
        trivial_bits: t.state_bits() as u16,
    })
}

/// Whether every layer of `algo` lowers: boosting layers need `m = 2`
/// (single-bit leader pointers) and LUT tables must be small enough to
/// unroll.
fn supported(algo: &Algorithm) -> bool {
    match algo {
        Algorithm::Trivial(_) => true,
        Algorithm::Lut(l) => (l.states() as u64)
            .checked_pow(l.spec().n as u32)
            .is_some_and(|rows| rows <= MAX_LUT_ROWS),
        Algorithm::Boosted(b) => b.params().m() == 2 && supported(b.inner()),
    }
}

/// Output field width of the whole protocol (values in `[0, c)`).
fn out_width(algo: &Algorithm) -> u32 {
    bits_for(algo.modulus()).max(1)
}

/// MSB-first integer value of bits `off..off+w` of a codec bit string.
fn field_value(bits: &BitVec, off: u32, w: u32) -> u64 {
    (0..w).fold(0, |acc, i| {
        (acc << 1) | u64::from(bits.bit((off + i) as usize))
    })
}

/// The scalar output value encoded into the out field of a bundle.
fn scalar_output(algo: &Algorithm, node: usize, bits: &BitVec) -> u64 {
    match algo {
        Algorithm::Trivial(t) => field_value(bits, 0, t.state_bits()) % t.modulus(),
        Algorithm::Lut(l) => l.output(node, field_value(bits, 0, l.state_bits()) as u8),
        Algorithm::Boosted(b) => {
            let c = b.params().c_out();
            let a = field_value(bits, b.inner().state_bits(), bits_for(c + 1));
            if a >= c {
                0
            } else {
                a
            }
        }
    }
}

/// One received bundle as seen by one receiver: either live planes of an
/// input arena, or a lane-uniform constant bit string (which folds whole
/// sub-circuits away in the builder).
#[derive(Clone)]
enum BundleRef {
    Planes { space: Space, base: u32 },
    Uniform(Arc<BitVec>),
}

/// Next-state fields of one receiver, in codec encode order, plus the ext
/// planes of the innermost trivial counter (empty when untracked).
struct Lowered {
    state: Vec<NodeRef>,
    ext: Vec<NodeRef>,
}

/// Builder context threading the DAG and the bundle geometry through the
/// recursive lowering.
struct Ctx {
    b: Builder,
    ext: Option<ExtSpec>,
    state_bits: u32,
}

impl Ctx {
    /// Bits `off..off+w` of a bundle (state prefix offsets).
    fn field(&mut self, r: &BundleRef, off: u32, w: u16) -> NodeRef {
        match r {
            BundleRef::Planes { space, base } => self.b.input(*space, base + off, w),
            BundleRef::Uniform(bits) => {
                let v = field_value(bits, off, w as u32);
                self.b.constant(v, w)
            }
        }
    }

    /// Bits of the derived ext region (offsets relative to its base).
    fn ext_field(&mut self, r: &BundleRef, off: u32, w: u16) -> NodeRef {
        let sb = self.state_bits;
        self.field(r, sb + off, w)
    }

    /// A mux-chain table lookup `table[key]` (exactly one row matches a
    /// valid key; invalid keys resolve to row 0, unreachable for codec
    /// states).
    fn lookup(&mut self, key: NodeRef, table: &[u64], w: u16) -> NodeRef {
        let mut acc = self.b.constant(table[0], w);
        for (s, &v) in table.iter().enumerate().skip(1) {
            let e = self.b.eq_const(key, s as u64);
            let c = self.b.constant(v, w);
            acc = self.b.mux(e, c, acc);
        }
        acc
    }

    /// The raw inner counter value member `j` announces with bundle `r`
    /// (`h(j, state)` of the level's inner algorithm, in the encoded
    /// domain).
    fn member_value(&mut self, inner: &Algorithm, j: usize, r: &BundleRef) -> NodeRef {
        match inner {
            Algorithm::Trivial(t) => self.field(r, 0, t.state_bits() as u16),
            Algorithm::Lut(l) => {
                let st = self.field(r, 0, l.state_bits() as u16);
                let table: Vec<u64> = (0..l.states()).map(|s| l.output(j, s)).collect();
                self.lookup(st, &table, bits_for(l.spec().c).max(1) as u16)
            }
            Algorithm::Boosted(bc) => {
                let c = bc.params().c_out();
                let aw = bits_for(c + 1) as u16;
                let a = self.field(r, bc.inner().state_bits(), aw);
                let e = self.b.eq_const(a, c);
                let z = self.b.constant(0, aw);
                self.b.mux(e, z, a)
            }
        }
    }

    /// The leader-pointer bit of member `j` of `block`: with `m = 2`,
    /// `b = (⌊v/τ⌋ / 4^i) mod 2` is bit `2i` of the quotient.
    fn pointer_b_bit(
        &mut self,
        inner: &Algorithm,
        p: &BoostParams,
        block: usize,
        j: usize,
        r: &BundleRef,
    ) -> NodeRef {
        if let (Algorithm::Trivial(_), Some(e)) = (inner, self.ext) {
            debug_assert_eq!(e.tau, p.tau(), "ext tracks the innermost parent's τ");
            let q = self.ext_field(r, 0, e.qw);
            return self.b.slice(q, 2 * block as u16, 1);
        }
        if let Algorithm::Lut(l) = inner {
            let st = self.field(r, 0, l.state_bits() as u16);
            let table: Vec<u64> = (0..l.states())
                .map(|s| p.pointer(block, l.output(j, s)).b as u64)
                .collect();
            return self.lookup(st, &table, 1);
        }
        let v = self.member_value(inner, j, r);
        let (q, _) = self.b.divmod_const(v, p.tau());
        self.b.slice(q, 2 * block as u16, 1)
    }

    /// The slot residue `r = v mod τ` of member `j` (block-independent).
    fn pointer_r(
        &mut self,
        inner: &Algorithm,
        p: &BoostParams,
        j: usize,
        r: &BundleRef,
    ) -> NodeRef {
        if let (Algorithm::Trivial(_), Some(e)) = (inner, self.ext) {
            return self.ext_field(r, e.qw as u32, e.rw);
        }
        if let Algorithm::Lut(l) = inner {
            let st = self.field(r, 0, l.state_bits() as u16);
            let table: Vec<u64> = (0..l.states()).map(|s| l.output(j, s) % p.tau()).collect();
            return self.lookup(st, &table, bits_for(p.tau()) as u16);
        }
        let v = self.member_value(inner, j, r);
        self.b.divmod_const(v, p.tau()).1
    }

    /// Popcount with inputs split into receiver-shared and
    /// receiver-specific parts. A program lowers every receiver against
    /// the same honest bundles, so summing the shared bits as their own
    /// subtree makes it intern to one node across all receivers; a single
    /// mixed-order tree would interleave specific bits and break that
    /// sharing. The value is the plain sum either way.
    fn popcount_split(&mut self, shared: &[NodeRef], specific: &[NodeRef]) -> NodeRef {
        if shared.is_empty() {
            return self.b.popcount(specific);
        }
        if specific.is_empty() {
            return self.b.popcount(shared);
        }
        let s = self.b.popcount(shared);
        let x = self.b.popcount(specific);
        let w = self.b.width(s).max(self.b.width(x)) + 1;
        self.b.add_width(s, x, w)
    }

    /// The three-stage majority vote of §3.3: per-block support bits, the
    /// elected leader (one bit, `m = 2`), and the leader block's slot
    /// counter `R` as a strict-majority-or-zero select.
    ///
    /// `mask[u]` flags refs that vary per receiver (faulty senders); it
    /// steers the popcount splits only, never the values.
    fn vote_slot(&mut self, bc: &BoostedCounter, refs: &[BundleRef], mask: &[bool]) -> NodeRef {
        let p = bc.params();
        let (k, n) = (p.k(), p.n_inner());
        let rw = bits_for(p.tau()) as u16;

        let mut support = Vec::with_capacity(k);
        let mut support_shared = Vec::with_capacity(k);
        for i in 0..k {
            let mut shared = Vec::with_capacity(n);
            let mut specific = Vec::new();
            for j in 0..n {
                let u = p.member(i, j).index();
                let bit = self.pointer_b_bit(bc.inner(), p, i, j, &refs[u]);
                if mask[u] {
                    specific.push(bit);
                } else {
                    shared.push(bit);
                }
            }
            let all_shared = specific.is_empty();
            let pc = self.popcount_split(&shared, &specific);
            support.push(self.b.gt_const(pc, (n / 2) as u64));
            support_shared.push(all_shared);
        }
        let mut shared = Vec::with_capacity(k);
        let mut specific = Vec::new();
        for (&s, &is_shared) in support.iter().zip(&support_shared) {
            if is_shared {
                shared.push(s);
            } else {
                specific.push(s);
            }
        }
        let pc = self.popcount_split(&shared, &specific);
        let leader = self.b.gt_const(pc, (k / 2) as u64);

        // majority_or(·, 0): the strict-majority value is unique, so an
        // OR-fold of masked candidates reproduces it (and 0 by default).
        //
        // The leader bit is uniform across j, so the select distributes
        // over the whole majority network: compute majority_or per leader
        // candidate on the raw pointer arrays (mostly receiver-shared
        // nodes) and mux once at the end — majority over leader-muxed
        // values would poison every eq/popcount with the
        // receiver-specific leader bit and defeat cross-receiver CSE.
        let zero = self.b.constant(0, rw);
        let mut slots = [zero; 2];
        for (m, slot_m) in slots.iter_mut().enumerate() {
            let rs: Vec<NodeRef> = (0..n)
                .map(|j| {
                    let r = self.pointer_r(bc.inner(), p, j, &refs[p.member(m, j).index()]);
                    self.b.zext(r, rw)
                })
                .collect();
            let spec: Vec<bool> = (0..n).map(|j| mask[p.member(m, j).index()]).collect();
            let mut acc = zero;
            for j in 0..n {
                let mut shared = Vec::with_capacity(n);
                let mut specific = Vec::new();
                for u in 0..n {
                    let e = self.b.eq(rs[j], rs[u]);
                    if spec[u] {
                        specific.push(e);
                    } else {
                        shared.push(e);
                    }
                }
                let cnt = self.popcount_split(&shared, &specific);
                let maj = self.b.gt_const(cnt, (n / 2) as u64);
                let val = self.b.mux(maj, rs[j], zero);
                acc = self.b.or(acc, val);
            }
            *slot_m = acc;
        }
        self.b.mux(leader, slots[1], slots[0])
    }

    /// `(a + 1) mod C` on an encoded register that is known to hold a real
    /// value (possibly the transient cap `C` after a king adoption):
    /// `C ↦ 0`, `C + 1 ↦ 1`.
    fn inc_unguarded(&mut self, x: NodeRef, c: u64, aw: u16) -> NodeRef {
        let one = self.b.constant(1, 1);
        let t = self.b.add_width(x, one, aw + 1);
        let low = self.b.slice(t, 0, aw);
        let hit_c = self.b.eq_const(t, c);
        let hit_c1 = self.b.eq_const(t, c + 1);
        let zero = self.b.constant(0, aw);
        let onew = self.b.constant(1, aw);
        let wrapped = self.b.mux(hit_c1, onew, low);
        self.b.mux(hit_c, zero, wrapped)
    }

    /// The paper's `increment a[v]`: a no-op on `∞` (encoded as `C`),
    /// `(a + 1) mod C` otherwise.
    fn inc_guarded(&mut self, x: NodeRef, c: u64, aw: u16) -> NodeRef {
        let inc = self.inc_unguarded(x, c, aw);
        let is_inf = self.b.eq_const(x, c);
        let cap = self.b.constant(c, aw);
        self.b.mux(is_inf, cap, inc)
    }

    /// One phase-king slot (Table 2) in counting mode over the encoded
    /// register domain, selected per lane by the voted `slot`.
    fn pk_step(
        &mut self,
        bc: &BoostedCounter,
        local: usize,
        refs: &[BundleRef],
        slot: NodeRef,
        mask: &[bool],
    ) -> (NodeRef, NodeRef) {
        let p = bc.params();
        let pk = p.pk();
        let c = p.c_out();
        let aw = bits_for(c + 1) as u16;
        let a_off = bc.inner().state_bits();
        let n = p.n_total();

        let a_self = self.field(&refs[local], a_off, aw);
        let d_self = self.field(&refs[local], a_off + u32::from(aw), 1);
        let a_all: Vec<NodeRef> = (0..n).map(|u| self.field(&refs[u], a_off, aw)).collect();

        let (g, s3) = self.b.divmod_const(slot, 3);
        let is_collect = self.b.eq_const(s3, 0);
        let is_propose = self.b.eq_const(s3, 1);

        // z_{a[v]}, shared by I_{3ℓ} (keep test) and I_{3ℓ+1} (d update).
        // Split like the adoption counts below so the tree interns with
        // the `u == local` iteration there.
        let mut eq_shared = Vec::with_capacity(n);
        let mut eq_specific = Vec::new();
        for (v, &au) in a_all.iter().enumerate() {
            let e = self.b.eq(au, a_self);
            if mask[v] {
                eq_specific.push(e);
            } else {
                eq_shared.push(e);
            }
        }
        let cnt_own = self.popcount_split(&eq_shared, &eq_specific);
        let keep_own = self.b.ge_const(cnt_own, pk.keep_threshold() as u64);
        let cap = self.b.constant(c, aw);

        // I_{3ℓ}: reset to ∞ unless N−F support, then increment.
        let a_kept = self.b.mux(keep_own, a_self, cap);
        let a_collect = self.inc_guarded(a_kept, c, aw);

        // I_{3ℓ+1}: d from the keep test; adopt min{j : z_j > F} (∞ when
        // nothing qualifies — the fold's initial value, since enc(∞) = C
        // sorts above every real value).
        let mut a_min = cap;
        for u in 0..n {
            let mut shared = Vec::with_capacity(n);
            let mut specific = Vec::new();
            // Split on the *column* flag only: even when a_all[u] itself is
            // receiver-specific, the honest-column subtree coincides across
            // receivers whenever faulty sender u shows them the same face.
            for (v, &av) in a_all.iter().enumerate() {
                let e = self.b.eq(a_all[u], av);
                if mask[v] {
                    specific.push(e);
                } else {
                    shared.push(e);
                }
            }
            let cnt = self.popcount_split(&shared, &specific);
            let qual = self.b.gt_const(cnt, pk.adopt_threshold() as u64);
            let less = self.b.lt(a_all[u], a_min);
            let better = self.b.and(qual, less);
            a_min = self.b.mux(better, a_all[u], a_min);
        }
        let a_propose = self.inc_guarded(a_min, c, aw);

        // I_{3ℓ+2}: undecided nodes adopt min{C, a[ℓ]} — the identity on the
        // encoded king register — then increment as a *real* value; decided
        // nodes keep a (guarded increment).
        let groups = pk.king_groups();
        let mut king = a_all[groups as usize - 1];
        for l in (0..groups - 1).rev() {
            let e = self.b.eq_const(g, l);
            king = self.b.mux(e, a_all[l as usize], king);
        }
        let is_inf = self.b.eq_const(a_self, c);
        let nd = self.b.not(d_self);
        let undecided = self.b.or(is_inf, nd);
        let adopted = self.inc_unguarded(king, c, aw);
        let kept = self.inc_guarded(a_self, c, aw);
        let a_king = self.b.mux(undecided, adopted, kept);
        let one = self.b.constant(1, 1);

        let a_pk = self.b.mux(is_propose, a_propose, a_king);
        let a_next = self.b.mux(is_collect, a_collect, a_pk);
        let d_pk = self.b.mux(is_propose, keep_own, one);
        let d_next = self.b.mux(is_collect, d_self, d_pk);
        (a_next, d_next)
    }

    /// The full transition of `local` at one recursion level: next-state
    /// fields in encode order. `mask[u]` flags receiver-specific refs
    /// (see [`Ctx::popcount_split`]).
    fn step(
        &mut self,
        algo: &Algorithm,
        local: usize,
        refs: &[BundleRef],
        mask: &[bool],
    ) -> Lowered {
        match algo {
            Algorithm::Trivial(t) => {
                let tb = t.state_bits() as u16;
                let me = refs[local].clone();
                let v = self.field(&me, 0, tb);
                let one = self.b.constant(1, 1);
                let inc = self.b.add_width(v, one, tb);
                let wrap = self.b.eq_const(v, t.modulus() - 1);
                let zero = self.b.constant(0, tb);
                let next = self.b.mux(wrap, zero, inc);
                let mut ext = Vec::new();
                if let Some(e) = self.ext {
                    let q = self.ext_field(&me, 0, e.qw);
                    let r = self.ext_field(&me, e.qw as u32, e.rw);
                    let r_wrap = self.b.eq_const(r, e.tau - 1);
                    let rz = self.b.constant(0, e.rw);
                    let r_inc = self.b.add_width(r, one, e.rw);
                    let r_next = self.b.mux(r_wrap, rz, r_inc);
                    // q wraps naturally: c/τ is a power of two.
                    let q_inc = self.b.add_width(q, one, e.qw);
                    let q_next = self.b.mux(r_wrap, q_inc, q);
                    ext.push(q_next);
                    ext.push(r_next);
                }
                Lowered {
                    state: vec![next],
                    ext,
                }
            }
            Algorithm::Lut(l) => {
                let n = l.spec().n;
                let sb = l.state_bits() as u16;
                let states = l.states() as u64;
                let recv: Vec<NodeRef> = (0..n).map(|u| self.field(&refs[u], 0, sb)).collect();
                let rows = states.pow(n as u32);
                let mut acc = {
                    let v = l.next(local, &vec![0u8; n]);
                    self.b.constant(u64::from(v), sb)
                };
                for row in 1..rows {
                    let mut x = row;
                    let mut cond: Option<NodeRef> = None;
                    let mut digits = Vec::with_capacity(n);
                    for &rcv in &recv {
                        let d = (x % states) as u8;
                        x /= states;
                        digits.push(d);
                        let e = self.b.eq_const(rcv, u64::from(d));
                        cond = Some(match cond {
                            None => e,
                            Some(cd) => self.b.and(cd, e),
                        });
                    }
                    let nxt = l.next(local, &digits);
                    let cv = self.b.constant(u64::from(nxt), sb);
                    acc = self.b.mux(cond.expect("n ≥ 1"), cv, acc);
                }
                Lowered {
                    state: vec![acc],
                    ext: Vec::new(),
                }
            }
            Algorithm::Boosted(bc) => {
                let p = bc.params();
                let (block, inner_local) = p.block_of(NodeId::new(local));
                let block_refs: Vec<BundleRef> = (0..p.n_inner())
                    .map(|j| refs[p.member(block, j).index()].clone())
                    .collect();
                let block_mask: Vec<bool> = (0..p.n_inner())
                    .map(|j| mask[p.member(block, j).index()])
                    .collect();
                let mut lowered = self.step(bc.inner(), inner_local, &block_refs, &block_mask);
                let slot = self.vote_slot(bc, refs, mask);
                let (a, d) = self.pk_step(bc, local, refs, slot, mask);
                lowered.state.push(a);
                lowered.state.push(d);
                lowered
            }
        }
    }

    /// The protocol output `h(node, next_state)` from the lowered next-state
    /// fields, at [`out_width`] planes.
    fn output_field(&mut self, algo: &Algorithm, node: usize, state: &[NodeRef]) -> NodeRef {
        let ow = out_width(algo) as u16;
        match algo {
            Algorithm::Trivial(_) => state[0],
            Algorithm::Lut(l) => {
                let table: Vec<u64> = (0..l.states()).map(|s| l.output(node, s)).collect();
                self.lookup(state[0], &table, ow)
            }
            Algorithm::Boosted(bc) => {
                let c = bc.params().c_out();
                let aw = bits_for(c + 1) as u16;
                let a = state[state.len() - 2];
                debug_assert_eq!(self.b.width(a), aw);
                let e = self.b.eq_const(a, c);
                let z = self.b.constant(0, aw);
                let out = self.b.mux(e, z, a);
                self.b.slice(out, 0, ow)
            }
        }
    }
}

/// Compiled sliced model of one ([`Algorithm`], fault set) pair: lowers the
/// exact recursive transition to word-op [`Program`]s, one per distinct
/// adversarial face pattern, and caches them.
///
/// Built through [`sc_sim::SlicedProtocol::sliced_model`] (implemented for
/// [`Algorithm`]); unsupported structures (a boosting layer with `m ≠ 2`, or
/// LUT tables above `MAX_LUT_ROWS` rows) return `None` there, keeping the
/// scalar engine as the semantic source of truth.
pub struct SlicedAlgorithm {
    algo: Algorithm,
    layout: SlicedLayout,
    faulty: Vec<NodeId>,
    ext: Option<ExtSpec>,
    packed: HashMap<u16, Option<Arc<BitVec>>>,
    cache: HashMap<RoundFaces, Arc<Program>>,
}

impl SlicedAlgorithm {
    fn new(algo: Algorithm, faulty: &[NodeId]) -> Option<Self> {
        if !supported(&algo) {
            return None;
        }
        let ext = ext_spec(&algo);
        let layout = SlicedLayout {
            n: algo.n() as u32,
            state_bits: algo.state_bits(),
            ext_bits: ext.map_or(0, |e| u32::from(e.qw) + u32::from(e.rw)),
            out_bits: out_width(&algo),
        };
        Some(SlicedAlgorithm {
            algo,
            layout,
            faulty: faulty.to_vec(),
            ext,
            packed: HashMap::new(),
            cache: HashMap::new(),
        })
    }

    /// Resolves what receiver `v` sees from sender `u` under `faces`.
    fn resolve(&self, u: usize, v: usize, faces: &RoundFaces) -> BundleRef {
        let n = self.layout.n as usize;
        match self.faulty.binary_search(&NodeId::new(u)) {
            Err(_) => BundleRef::Planes {
                space: Space::Cur,
                base: self.layout.node_base(u as u32),
            },
            Ok(g) => match faces.face(g, n, v) {
                FaceRef::Honest(d) => BundleRef::Planes {
                    space: Space::Cur,
                    base: self.layout.node_base(d),
                },
                FaceRef::Ring { lag, donor } => BundleRef::Planes {
                    space: Space::Ring(lag),
                    base: self.layout.node_base(donor),
                },
                FaceRef::Packed(id) => match self.packed.get(&id) {
                    Some(Some(bits)) => BundleRef::Uniform(bits.clone()),
                    _ => BundleRef::Planes {
                        space: Space::Packed(id),
                        base: 0,
                    },
                },
                FaceRef::Gather(t) => BundleRef::Planes {
                    space: Space::Gather(t),
                    base: 0,
                },
            },
        }
    }
}

impl RoundProgramSource for SlicedAlgorithm {
    fn layout(&self) -> SlicedLayout {
        self.layout
    }

    fn extend_bundle(&self, node: u32, bundle: &mut BitVec) {
        debug_assert_eq!(bundle.len() as u32, self.layout.state_bits);
        if let Some(e) = self.ext {
            let v = field_value(bundle, 0, u32::from(e.trivial_bits));
            bundle.push_bits(v / e.tau, u32::from(e.qw));
            bundle.push_bits(v % e.tau, u32::from(e.rw));
        }
        let out = scalar_output(&self.algo, node as usize, bundle);
        bundle.push_bits(out, self.layout.out_bits);
    }

    fn packed_registered(&self, id: u16) -> bool {
        self.packed.contains_key(&id)
    }

    fn register_packed(&mut self, id: u16, uniform: Option<&BitVec>) {
        let entry = uniform.map(|b| Arc::new(b.clone()));
        if let Some(prev) = self.packed.get(&id) {
            let same = match (prev, &entry) {
                (None, None) => true,
                (Some(a), Some(b)) => a.as_ref() == b.as_ref(),
                _ => false,
            };
            assert!(
                same,
                "packed bundle {id} re-registered with different content"
            );
            return;
        }
        self.packed.insert(id, entry);
    }

    fn round_program(&mut self, faces: &RoundFaces) -> Arc<Program> {
        if let Some(p) = self.cache.get(faces) {
            return p.clone();
        }
        let n = self.layout.n as usize;
        let mut ctx = Ctx {
            b: Builder::new(),
            ext: self.ext,
            state_bits: self.layout.state_bits,
        };
        let mut stores = Vec::new();
        // Faulty senders' refs depend on the receiver (their faces differ
        // per v); honest bundles are the same planes for every receiver.
        let mask: Vec<bool> = (0..n)
            .map(|u| self.faulty.binary_search(&NodeId::new(u)).is_ok())
            .collect();
        for v in 0..n {
            if self.faulty.binary_search(&NodeId::new(v)).is_ok() {
                continue;
            }
            let refs: Vec<BundleRef> = (0..n).map(|u| self.resolve(u, v, faces)).collect();
            let lowered = ctx.step(&self.algo, v, &refs, &mask);
            let mut off = self.layout.node_base(v as u32);
            for &f in &lowered.state {
                stores.push((f, off));
                off += u32::from(ctx.b.width(f));
            }
            assert_eq!(
                off,
                self.layout.node_base(v as u32) + self.layout.state_bits,
                "state fields must tile the codec width"
            );
            let mut eoff = self.layout.ext_base(v as u32);
            for &f in &lowered.ext {
                stores.push((f, eoff));
                eoff += u32::from(ctx.b.width(f));
            }
            assert_eq!(eoff, self.layout.ext_base(v as u32) + self.layout.ext_bits);
            let out = ctx.output_field(&self.algo, v, &lowered.state);
            debug_assert_eq!(u32::from(ctx.b.width(out)), self.layout.out_bits);
            stores.push((out, self.layout.out_base(v as u32)));
        }
        let program = Arc::new(ctx.b.finalize(&stores));
        if self.cache.len() >= MAX_CACHED_PROGRAMS {
            self.cache.clear();
        }
        self.cache.insert(faces.clone(), program.clone());
        program
    }
}

impl SlicedProtocol for Algorithm {
    fn sliced_model(&self, faulty: &[NodeId]) -> Option<Box<dyn RoundProgramSource + Send>> {
        SlicedAlgorithm::new(self.clone(), faulty)
            .map(|m| Box::new(m) as Box<dyn RoundProgramSource + Send>)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterBuilder, CounterState, LutSpec};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sc_protocol::{ExecSpaces, MessageView, PlaneBuf, StepContext};
    use sc_sim::{
        adversaries, sliced_crash, sliced_replay, sliced_two_faced_periodic, two_faced_periodic,
        Batch, BatchReport, Scenario, SimError, SlicedBatch,
    };

    fn a4() -> Algorithm {
        CounterBuilder::corollary1(1, 8).unwrap().build().unwrap()
    }

    fn a12() -> Algorithm {
        CounterBuilder::corollary1(1, 2)
            .unwrap()
            .boost(3)
            .unwrap()
            .build()
            .unwrap()
    }

    fn a36() -> Algorithm {
        CounterBuilder::corollary1(1, 2)
            .unwrap()
            .boost(3)
            .unwrap()
            .boost(3)
            .unwrap()
            .build()
            .unwrap()
    }

    /// Packs random configurations, advances `rounds` rounds through the
    /// all-honest round program, and asserts every node's full bundle
    /// (state, ext, out) equals the scalar `Algorithm::step` result
    /// re-extended from the codec — the strongest per-bit oracle we have.
    fn program_matches_scalar_step(algo: &Algorithm, rounds: usize, lanes: usize) {
        let n = algo.n();
        let mut model = algo.sliced_model(&[]).expect("stack should lower");
        let layout = model.layout();
        let mut rng = SmallRng::seed_from_u64(0xfeed);
        let mut states: Vec<Vec<CounterState>> = (0..lanes)
            .map(|_| {
                (0..n)
                    .map(|v| algo.random_state(NodeId::new(v), &mut rng))
                    .collect()
            })
            .collect();
        let mut cur = PlaneBuf::new(layout.total_planes() as usize, lanes.div_ceil(64));
        for (lane, config) in states.iter().enumerate() {
            for (v, state) in config.iter().enumerate() {
                let mut bits = BitVec::new();
                algo.encode_state(NodeId::new(v), state, &mut bits);
                model.extend_bundle(v as u32, &mut bits);
                cur.pack_lane(lane, layout.node_base(v as u32) as usize, &bits);
            }
        }
        let program = model.round_program(&RoundFaces::new(0, n));
        let mut scratch = Vec::new();
        for round in 0..rounds {
            let mut next = cur.clone();
            let spaces = ExecSpaces {
                cur: &cur,
                ring: &[],
                packed: &[],
                gather: &[],
            };
            program.exec(&spaces, &mut next, &mut scratch);
            for (lane, config) in states.iter_mut().enumerate() {
                let view = MessageView::new(config, &[]);
                let mut step_rng = SmallRng::seed_from_u64(0);
                let mut ctx = StepContext::new(&mut step_rng);
                let stepped: Vec<CounterState> = (0..n)
                    .map(|v| algo.step(NodeId::new(v), &view, &mut ctx))
                    .collect();
                for (v, state) in stepped.iter().enumerate() {
                    let mut want = BitVec::new();
                    algo.encode_state(NodeId::new(v), state, &mut want);
                    model.extend_bundle(v as u32, &mut want);
                    let mut got = BitVec::new();
                    next.unpack_lane(
                        lane,
                        layout.node_base(v as u32) as usize,
                        layout.node_planes() as usize,
                        &mut got,
                    );
                    assert_eq!(got, want, "round {round}, lane {lane}, node {v}");
                }
                *config = stepped;
            }
            cur = next;
        }
    }

    #[test]
    fn trivial_program_matches_scalar_step() {
        program_matches_scalar_step(&Algorithm::trivial(6).unwrap(), 8, 70);
    }

    #[test]
    fn lut_program_matches_scalar_step() {
        // A 2-node follow-the-max 4-counter as explicit tables.
        let states = 4u8;
        let rows =
            |f: &dyn Fn(u8, u8) -> u8| -> Vec<u8> { (0..16u8).map(|i| f(i % 4, i / 4)).collect() };
        let spec = LutSpec {
            n: 2,
            f: 0,
            c: 4,
            states,
            transition: vec![
                rows(&|a, b| (a.max(b) + 1) % 4),
                rows(&|a, b| (a.max(b) + 1) % 4),
            ],
            output: vec![vec![0, 1, 2, 3], vec![0, 1, 2, 3]],
            stabilization_bound: 1,
        };
        program_matches_scalar_step(&Algorithm::lut(spec).unwrap(), 6, 64);
    }

    #[test]
    fn a4_program_matches_scalar_step() {
        program_matches_scalar_step(&a4(), 24, 64);
    }

    #[test]
    fn a12_program_matches_scalar_step() {
        program_matches_scalar_step(&a12(), 8, 64);
    }

    #[test]
    fn a36_program_matches_scalar_step() {
        program_matches_scalar_step(&a36(), 3, 64);
    }

    #[test]
    fn unsupported_structures_fall_back_to_none() {
        // k = 5 gives m = 3: leader pointers are no longer single bits.
        let inner = Algorithm::trivial(9 * 6u64.pow(5) * 4).unwrap();
        let wide = Algorithm::boosted(inner, 5, 1, 8, 0).unwrap();
        assert_eq!(wide.as_boosted_counter().unwrap().params().m(), 3);
        assert!(wide.sliced_model(&[]).is_none());
        // Supported stacks lower regardless of the fault set.
        assert!(a4().sliced_model(&[NodeId::new(1)]).is_some());
    }

    fn verdicts(report: &BatchReport) -> Vec<(u64, String)> {
        report
            .outcomes
            .iter()
            .map(|o| (o.seed, format!("{:?}", o.result)))
            .collect()
    }

    fn assert_sliced_matches_scalar<A, F, St>(
        algo: &Algorithm,
        horizon: u64,
        scenarios: &[Scenario<CounterState>],
        scalar: F,
        strategy: &St,
        label: &str,
    ) where
        A: sc_sim::Adversary<CounterState>,
        F: Fn(&Scenario<CounterState>) -> A + Sync,
        St: sc_sim::SlicedStrategy<CounterState> + Sync,
    {
        let scalar_report = Batch::new(algo, horizon).run(scenarios, scalar);
        let sliced_report = SlicedBatch::new(algo, horizon)
            .lane_words(1)
            .run(scenarios, strategy)
            .expect("stack should lower");
        assert_eq!(
            verdicts(&scalar_report),
            verdicts(&sliced_report),
            "{label}"
        );
    }

    #[test]
    fn a4_crash_matches_scalar_batch() {
        let algo = a4();
        let scenarios = Scenario::seeds(0..48);
        let seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
        let strategy = sliced_crash(&algo, [1], &seeds);
        assert_sliced_matches_scalar(
            &algo,
            2400,
            &scenarios,
            |s| adversaries::crash(&algo, [1], s.seed),
            &strategy,
            "crash",
        );
    }

    #[test]
    fn a4_replay_matches_scalar_batch() {
        let algo = a4();
        let scenarios = Scenario::seeds(0..32);
        for delay in [1usize, 3] {
            let strategy = sliced_replay(algo.n(), [3], delay);
            assert_sliced_matches_scalar(
                &algo,
                1200,
                &scenarios,
                |_| adversaries::replay::<CounterState>([3], delay),
                &strategy,
                &format!("replay delay {delay}"),
            );
        }
    }

    #[test]
    fn a4_two_faced_matches_scalar_batch() {
        let algo = a4();
        let scenarios = Scenario::seeds(0..32);
        let seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
        let strategy = sliced_two_faced_periodic(algo.n(), [0], &seeds, 2);
        assert_sliced_matches_scalar(
            &algo,
            1200,
            &scenarios,
            |s| two_faced_periodic([0], s.seed, 2),
            &strategy,
            "two-faced",
        );
    }

    #[test]
    fn a12_crash_matches_scalar_batch() {
        let algo = a12();
        let scenarios = Scenario::seeds(0..16);
        let seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
        let strategy = sliced_crash(&algo, [2, 7], &seeds);
        assert_sliced_matches_scalar(
            &algo,
            400,
            &scenarios,
            |s| adversaries::crash(&algo, [2, 7], s.seed),
            &strategy,
            "a12 crash",
        );
    }

    #[test]
    fn horizon_too_short_matches_scalar_contract() {
        let algo = a4();
        let scenarios = Scenario::seeds(0..3);
        let seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
        let strategy = sliced_crash(&algo, [1], &seeds);
        let report = SlicedBatch::new(&algo, 4)
            .run(&scenarios, &strategy)
            .unwrap();
        for outcome in &report.outcomes {
            assert!(matches!(
                outcome.result,
                Err(SimError::HorizonTooShort { .. })
            ));
        }
    }
}
