//! Counter-structure-aware Byzantine strategies.
//!
//! The generic strategies of [`sc_sim::adversaries`] treat states as opaque.
//! The strategies here inspect and fabricate [`CounterState`]s to attack the
//! boosting construction exactly where its proof is tightest:
//!
//! * [`bad_king`] — **king equivocation**: faulty nodes present different
//!   phase-king registers to the two halves of the network, the classic
//!   attack that makes slot groups with faulty kings useless (why Theorem 1
//!   schedules `F+2` groups).
//! * [`pointer_split`] — **leader-pointer splitting**: faulty nodes
//!   fabricate inner counter values so that different receivers attribute
//!   different leader pointers `b[i,j]` to them, attacking the majority
//!   votes of §3.3.
//!
//! Both speak the borrowed message plane and reuse the shared strategy
//! building blocks ([`normalize_faults`], [`donor_id`], [`FacePair`]) so the
//! equivocation pattern has exactly one implementation in the workspace.
//! `bad_king` fabricates its two faces once per round; only
//! `pointer_split`'s per-receiver pointer forgery is inherently per-pair.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_consensus::{PkRegisters, INFINITY};
use sc_protocol::NodeId;
use sc_sim::adversaries::{donor_id, normalize_faults, FacePair};
use sc_sim::{Adversary, MessageSource, RoundContext, StatePool};

use crate::algorithm::{Algorithm, CounterState};
use crate::boosted::BoostedState;

/// King equivocation against a [`BoostedCounter`](crate::BoostedCounter).
///
/// Each round the faulty nodes pick two different register values and show
/// one to even receivers, the other to odd receivers, while keeping a
/// plausible inner counter copied from a correct donor. When a faulty node
/// serves as king this splits the undecided nodes into camps; correctness
/// must then come from the later honest-king groups.
///
/// # Panics
///
/// Panics if `algorithm` is not a boosted counter.
pub fn bad_king(
    algorithm: &Algorithm,
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
) -> BadKing {
    let c_out = algorithm
        .as_boosted_counter()
        .expect("bad_king attacks the boosted construction")
        .params()
        .c_out();
    BadKing {
        c_out,
        faulty: normalize_faults(faulty),
        rng: SmallRng::seed_from_u64(seed),
        faces: (0, 0),
        leases: None,
    }
}

/// Adversary produced by [`bad_king`].
#[derive(Clone, Debug)]
pub struct BadKing {
    c_out: u64,
    faulty: Vec<NodeId>,
    rng: SmallRng,
    faces: (u64, u64),
    leases: Option<FacePair>,
}

impl Adversary<CounterState> for BadKing {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn begin_round(
        &mut self,
        ctx: &RoundContext<'_, CounterState>,
        pool: &mut StatePool<CounterState>,
    ) {
        let x = self.rng.random_range(0..self.c_out);
        // A maximally confusing pair: a real value against a nearby value or
        // the reset state ∞.
        let y = match self.rng.random_range(0..3u8) {
            0 => INFINITY,
            1 => (x + 1) % self.c_out,
            _ => self.rng.random_range(0..self.c_out),
        };
        self.faces = (x, y);
        // Materialise both faces once for the whole round: every receiver of
        // the same parity leases the same fabricated state.
        let mut face = |a: u64, rng: &mut SmallRng| {
            let donor = donor_id(ctx, rng.random_range(0..usize::MAX));
            let inner = ctx.honest[donor.index()].as_boosted().inner.clone();
            let d = rng.random_bool(0.5);
            pool.fabricate(CounterState::Boosted(Box::new(BoostedState {
                inner,
                regs: PkRegisters::new(a, d),
            })))
        };
        self.leases = Some(FacePair {
            even: face(x, &mut self.rng),
            odd: face(y, &mut self.rng),
        });
    }

    fn message(
        &mut self,
        _from: NodeId,
        to: NodeId,
        _ctx: &RoundContext<'_, CounterState>,
        _pool: &mut StatePool<CounterState>,
    ) -> MessageSource {
        self.leases
            .as_ref()
            .expect("begin_round not called")
            .for_receiver(to)
    }
}

/// Leader-pointer splitting against a boosted counter.
///
/// When the inner counter is the trivial counter (the Corollary 1 topology,
/// blocks of one node), the faulty node's *own* counter value is whatever it
/// claims — so the adversary fabricates values whose `(r, y, b)`
/// decomposition points each receiver at a different leader block, while
/// mimicking a plausible slot counter `r`. With deeper inner counters exact
/// fabrication is no longer free, and the strategy falls back to showing
/// different receivers the states of different correct donors (which still
/// desynchronises pointer votes).
///
/// # Panics
///
/// Panics if `algorithm` is not a boosted counter.
pub fn pointer_split(
    algorithm: &Algorithm,
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
) -> PointerSplit {
    let b = algorithm
        .as_boosted_counter()
        .expect("pointer_split attacks the boosted construction");
    let p = b.params();
    let trivial_inner_modulus = match b.inner() {
        Algorithm::Trivial(t) => Some(t.modulus()),
        _ => None,
    };
    PointerSplit {
        tau: p.tau(),
        m: p.m(),
        n_inner: p.n_inner(),
        c_out: p.c_out(),
        trivial_inner_modulus,
        faulty: normalize_faults(faulty),
        rng: SmallRng::seed_from_u64(seed),
    }
}

/// Adversary produced by [`pointer_split`].
#[derive(Clone, Debug)]
pub struct PointerSplit {
    tau: u64,
    m: usize,
    n_inner: usize,
    c_out: u64,
    trivial_inner_modulus: Option<u64>,
    faulty: Vec<NodeId>,
    rng: SmallRng,
}

impl Adversary<CounterState> for PointerSplit {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn message(
        &mut self,
        from: NodeId,
        to: NodeId,
        ctx: &RoundContext<'_, CounterState>,
        pool: &mut StatePool<CounterState>,
    ) -> MessageSource {
        let donor = donor_id(ctx, to.index());
        let donor_state = &ctx.honest[donor.index()];
        let Some(c_inner) = self.trivial_inner_modulus else {
            // Deep inner counters: donor mirroring with scrambled registers.
            let inner = donor_state.as_boosted().inner.clone();
            let a = self.rng.random_range(0..self.c_out);
            return pool.fabricate(CounterState::Boosted(Box::new(BoostedState {
                inner,
                regs: PkRegisters::new(a, true),
            })));
        };
        // Corollary 1 topology: fabricate a counter value that keeps the
        // donor's slot phase r but points receiver `to` at leader block
        // `to mod m`, i.e. v = r + τ·(b·(2m)^i) for this node's block i.
        let donor_value = donor_state.as_boosted().inner.as_trivial();
        let r = donor_value % self.tau;
        let block = from.index() / self.n_inner;
        let two_m = 2 * self.m as u64;
        let target_b = (to.index() % self.m) as u64;
        let y = target_b * two_m.pow(block as u32);
        let v = (r + self.tau * y) % c_inner;
        let regs = donor_state.as_boosted().regs;
        pool.fabricate(CounterState::Boosted(Box::new(BoostedState {
            inner: CounterState::Trivial(v),
            regs,
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CounterBuilder;
    use sc_protocol::Counter as _;
    use sc_sim::testing::TestRound;

    fn a4() -> Algorithm {
        CounterBuilder::corollary1(1, 8).unwrap().build().unwrap()
    }

    fn round_of(algo: &Algorithm, seed: u64, faulty: usize) -> TestRound<CounterState> {
        use sc_protocol::SyncProtocol as _;
        let mut rng = SmallRng::seed_from_u64(seed);
        let states = (0..algo.n())
            .map(|i| algo.random_state(NodeId::new(i), &mut rng))
            .collect();
        TestRound::new(states, [faulty])
    }

    #[test]
    fn bad_king_splits_registers_by_parity() {
        let algo = a4();
        let mut adv = bad_king(&algo, [0], 7);
        let round = round_of(&algo, 1, 0);
        let mut pool = StatePool::new();
        let ctx = round.ctx(0);
        adv.begin_round(&ctx, &mut pool);
        let even_src = adv.message(NodeId::new(0), NodeId::new(2), &ctx, &mut pool);
        let odd_src = adv.message(NodeId::new(0), NodeId::new(3), &ctx, &mut pool);
        let even = pool.resolve(round.honest(), even_src);
        let odd = pool.resolve(round.honest(), odd_src);
        let (ea, oa) = (even.as_boosted().regs.a, odd.as_boosted().regs.a);
        // Faces are fixed per round and assigned by receiver parity.
        assert_eq!(ea, adv.faces.0);
        assert_eq!(oa, adv.faces.1);
        // Values stay in the register domain.
        assert!(ea == INFINITY || ea < algo.modulus());
        assert!(oa == INFINITY || oa < algo.modulus());
        // Exactly the two faces were materialised, not one per receiver.
        assert_eq!(pool.fabricated_total(), 2);
        let even_again = adv.message(NodeId::new(0), NodeId::new(2), &ctx, &mut pool);
        assert_eq!(even_again, even_src);
        assert_eq!(pool.fabricated_total(), 2);
    }

    #[test]
    fn pointer_split_targets_distinct_leaders() {
        let algo = a4();
        let b = algo.as_boosted_counter().unwrap();
        let mut adv = pointer_split(&algo, [1], 3);
        let round = round_of(&algo, 2, 1);
        let mut pool = StatePool::new();
        let ctx = round.ctx(0);
        adv.begin_round(&ctx, &mut pool);
        let p = b.params();
        let to0 = adv.message(NodeId::new(1), NodeId::new(0), &ctx, &mut pool);
        let to3 = adv.message(NodeId::new(1), NodeId::new(3), &ctx, &mut pool);
        let to0 = pool.resolve(round.honest(), to0);
        let to3 = pool.resolve(round.honest(), to3);
        let b0 = p.pointer(1, to0.as_boosted().inner.as_trivial()).b;
        let b3 = p.pointer(1, to3.as_boosted().inner.as_trivial()).b;
        assert_eq!(b0, 0); // receiver 0 mod m=2
        assert_eq!(b3, 1); // receiver 3 mod m=2
    }

    #[test]
    #[should_panic(expected = "boosted construction")]
    fn bad_king_requires_boosted_counter() {
        let t = Algorithm::trivial(4).unwrap();
        let _ = bad_king(&t, [0], 0);
    }
}
