//! Counter-structure-aware Byzantine strategies.
//!
//! The generic strategies of [`sc_sim::adversaries`] treat states as opaque.
//! The strategies here inspect and fabricate [`CounterState`]s to attack the
//! boosting construction exactly where its proof is tightest:
//!
//! * [`bad_king`] — **king equivocation**: faulty nodes present different
//!   phase-king registers to the two halves of the network, the classic
//!   attack that makes slot groups with faulty kings useless (why Theorem 1
//!   schedules `F+2` groups).
//! * [`pointer_split`] — **leader-pointer splitting**: faulty nodes
//!   fabricate inner counter values so that different receivers attribute
//!   different leader pointers `b[i,j]` to them, attacking the majority
//!   votes of §3.3.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_consensus::{PkRegisters, INFINITY};
use sc_protocol::NodeId;
use sc_sim::{Adversary, RoundContext};

use crate::algorithm::{Algorithm, CounterState};
use crate::boosted::BoostedState;

fn normalize(faulty: impl IntoIterator<Item = usize>) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = faulty.into_iter().map(NodeId::new).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Clones the state of some correct node (rotating through them by `salt`),
/// so fabricated messages stay maximally plausible.
fn donor_state(ctx: &RoundContext<'_, CounterState>, salt: usize) -> CounterState {
    let honest: Vec<NodeId> = ctx.honest_ids().collect();
    let donor = honest[salt % honest.len()];
    ctx.honest[donor.index()].clone()
}

/// King equivocation against a [`BoostedCounter`](crate::BoostedCounter).
///
/// Each round the faulty nodes pick two different register values and show
/// one to even receivers, the other to odd receivers, while keeping a
/// plausible inner counter copied from a correct donor. When a faulty node
/// serves as king this splits the undecided nodes into camps; correctness
/// must then come from the later honest-king groups.
///
/// # Panics
///
/// Panics if `algorithm` is not a boosted counter.
pub fn bad_king(
    algorithm: &Algorithm,
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
) -> BadKing {
    let c_out = algorithm
        .as_boosted_counter()
        .expect("bad_king attacks the boosted construction")
        .params()
        .c_out();
    BadKing {
        c_out,
        faulty: normalize(faulty),
        rng: SmallRng::seed_from_u64(seed),
        faces: (0, 0),
    }
}

/// Adversary produced by [`bad_king`].
#[derive(Clone, Debug)]
pub struct BadKing {
    c_out: u64,
    faulty: Vec<NodeId>,
    rng: SmallRng,
    faces: (u64, u64),
}

impl Adversary<CounterState> for BadKing {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn begin_round(&mut self, _ctx: &RoundContext<'_, CounterState>) {
        let x = self.rng.random_range(0..self.c_out);
        // A maximally confusing pair: a real value against a nearby value or
        // the reset state ∞.
        let y = match self.rng.random_range(0..3u8) {
            0 => INFINITY,
            1 => (x + 1) % self.c_out,
            _ => self.rng.random_range(0..self.c_out),
        };
        self.faces = (x, y);
    }

    fn message(
        &mut self,
        _from: NodeId,
        to: NodeId,
        ctx: &RoundContext<'_, CounterState>,
    ) -> CounterState {
        let donor = donor_state(ctx, self.rng.random_range(0..usize::MAX));
        let inner = donor.as_boosted().inner.clone();
        let a = if to.index().is_multiple_of(2) {
            self.faces.0
        } else {
            self.faces.1
        };
        let d = self.rng.random_bool(0.5);
        CounterState::Boosted(Box::new(BoostedState {
            inner,
            regs: PkRegisters::new(a, d),
        }))
    }
}

/// Leader-pointer splitting against a boosted counter.
///
/// When the inner counter is the trivial counter (the Corollary 1 topology,
/// blocks of one node), the faulty node's *own* counter value is whatever it
/// claims — so the adversary fabricates values whose `(r, y, b)`
/// decomposition points each receiver at a different leader block, while
/// mimicking a plausible slot counter `r`. With deeper inner counters exact
/// fabrication is no longer free, and the strategy falls back to showing
/// different receivers the states of different correct donors (which still
/// desynchronises pointer votes).
///
/// # Panics
///
/// Panics if `algorithm` is not a boosted counter.
pub fn pointer_split(
    algorithm: &Algorithm,
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
) -> PointerSplit {
    let b = algorithm
        .as_boosted_counter()
        .expect("pointer_split attacks the boosted construction");
    let p = b.params();
    let trivial_inner_modulus = match b.inner() {
        Algorithm::Trivial(t) => Some(t.modulus()),
        _ => None,
    };
    PointerSplit {
        tau: p.tau(),
        m: p.m(),
        n_inner: p.n_inner(),
        c_out: p.c_out(),
        trivial_inner_modulus,
        faulty: normalize(faulty),
        rng: SmallRng::seed_from_u64(seed),
    }
}

/// Adversary produced by [`pointer_split`].
#[derive(Clone, Debug)]
pub struct PointerSplit {
    tau: u64,
    m: usize,
    n_inner: usize,
    c_out: u64,
    trivial_inner_modulus: Option<u64>,
    faulty: Vec<NodeId>,
    rng: SmallRng,
}

impl Adversary<CounterState> for PointerSplit {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn message(
        &mut self,
        from: NodeId,
        to: NodeId,
        ctx: &RoundContext<'_, CounterState>,
    ) -> CounterState {
        let donor = donor_state(ctx, to.index());
        let Some(c_inner) = self.trivial_inner_modulus else {
            // Deep inner counters: donor mirroring with scrambled registers.
            let inner = donor.as_boosted().inner.clone();
            let a = self.rng.random_range(0..self.c_out);
            return CounterState::Boosted(Box::new(BoostedState {
                inner,
                regs: PkRegisters::new(a, true),
            }));
        };
        // Corollary 1 topology: fabricate a counter value that keeps the
        // donor's slot phase r but points receiver `to` at leader block
        // `to mod m`, i.e. v = r + τ·(b·(2m)^i) for this node's block i.
        let donor_value = donor.as_boosted().inner.as_trivial();
        let r = donor_value % self.tau;
        let block = from.index() / self.n_inner;
        let two_m = 2 * self.m as u64;
        let target_b = (to.index() % self.m) as u64;
        let y = target_b * two_m.pow(block as u32);
        let v = (r + self.tau * y) % c_inner;
        let regs = donor.as_boosted().regs;
        CounterState::Boosted(Box::new(BoostedState {
            inner: CounterState::Trivial(v),
            regs,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CounterBuilder;
    use sc_protocol::Counter as _;

    fn a4() -> Algorithm {
        CounterBuilder::corollary1(1, 8).unwrap().build().unwrap()
    }

    fn ctx_of<'a>(
        states: &'a [CounterState],
        faulty: &'a [NodeId],
    ) -> RoundContext<'a, CounterState> {
        RoundContext {
            round: 0,
            honest: states,
            faulty,
        }
    }

    fn random_states(algo: &Algorithm, seed: u64) -> Vec<CounterState> {
        use sc_protocol::SyncProtocol as _;
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..algo.n())
            .map(|i| algo.random_state(NodeId::new(i), &mut rng))
            .collect()
    }

    #[test]
    fn bad_king_splits_registers_by_parity() {
        let algo = a4();
        let mut adv = bad_king(&algo, [0], 7);
        let states = random_states(&algo, 1);
        let faulty = vec![NodeId::new(0)];
        let ctx = ctx_of(&states, &faulty);
        adv.begin_round(&ctx);
        let even = adv.message(NodeId::new(0), NodeId::new(2), &ctx);
        let odd = adv.message(NodeId::new(0), NodeId::new(3), &ctx);
        let (ea, oa) = (even.as_boosted().regs.a, odd.as_boosted().regs.a);
        // Faces are fixed per round and assigned by receiver parity.
        assert_eq!(ea, adv.faces.0);
        assert_eq!(oa, adv.faces.1);
        // Values stay in the register domain.
        assert!(ea == INFINITY || ea < algo.modulus());
        assert!(oa == INFINITY || oa < algo.modulus());
    }

    #[test]
    fn pointer_split_targets_distinct_leaders() {
        let algo = a4();
        let b = algo.as_boosted_counter().unwrap();
        let mut adv = pointer_split(&algo, [1], 3);
        let states = random_states(&algo, 2);
        let faulty = vec![NodeId::new(1)];
        let ctx = ctx_of(&states, &faulty);
        adv.begin_round(&ctx);
        let p = b.params();
        let to0 = adv.message(NodeId::new(1), NodeId::new(0), &ctx);
        let to3 = adv.message(NodeId::new(1), NodeId::new(3), &ctx);
        let b0 = p.pointer(1, to0.as_boosted().inner.as_trivial()).b;
        let b3 = p.pointer(1, to3.as_boosted().inner.as_trivial()).b;
        assert_eq!(b0, 0); // receiver 0 mod m=2
        assert_eq!(b3, 1); // receiver 3 mod m=2
    }

    #[test]
    #[should_panic(expected = "boosted construction")]
    fn bad_king_requires_boosted_counter() {
        let t = Algorithm::trivial(4).unwrap();
        let _ = bad_king(&t, [0], 0);
    }
}
