//! Hash-consing DAG builder lowering transitions to bit-sliced word ops.
//!
//! The sliced engine (`sc-sim`'s `SlicedBatch`) executes flat
//! [`sc_protocol::Program`] bytecode; this module is the compiler that
//! produces it. A [`Builder`] grows an SSA DAG of word-level nodes
//! (AND/OR/XOR/MUX, comparators, ripple adders, slices) with two
//! load-bearing properties:
//!
//! * **Hash-consing (CSE).** Every node is canonicalised (commutative
//!   operand ordering) and deduplicated, so the per-receiver lowering in
//!   [`crate::SlicedAlgorithm`](crate::Algorithm) can be written naively —
//!   shared honest sub-computations (pairwise equalities, popcounts,
//!   divmods) collapse into a single node automatically.
//! * **Constant folding.** Lane-uniform inputs (packed raw-value palettes,
//!   crash faces) are [`Builder::constant`]s, and every operator folds
//!   constant operands, so entire adversarial sub-circuits evaporate at
//!   compile time instead of costing word ops every round.
//!
//! [`Builder::finalize`] dead-code-eliminates from the store roots, assigns
//! contiguous scratch planes per live node (MSB-first, matching
//! [`sc_protocol::PlaneBuf`] packing) and emits the bytecode.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use sc_protocol::{bits_for, Op, Program, Space};

/// Multiply-xor hasher (the rustc-hash idiom). Interning is the compile
/// hot path — every lowered sub-expression probes the CSE map — and the
/// default SipHash dominates it; node keys are small fixed-size structs,
/// exactly the shape this hasher is good at.
#[derive(Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.0 = (self.0.rotate_left(5) ^ u64::from_le_bytes(buf))
                .wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
    }
}

/// Reference to a node in a [`Builder`] DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef(u32);

/// The node kinds of the word-op DAG. Internal; exposed only through
/// [`Builder`] methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Node {
    Input {
        space: Space,
        off: u32,
        w: u16,
    },
    Const {
        value: u64,
        w: u16,
    },
    Not(NodeRef),
    And(NodeRef, NodeRef),
    Or(NodeRef, NodeRef),
    Xor(NodeRef, NodeRef),
    Mux {
        c: NodeRef,
        a: NodeRef,
        b: NodeRef,
    },
    Eq(NodeRef, NodeRef),
    Lt(NodeRef, NodeRef),
    Add {
        a: NodeRef,
        b: NodeRef,
        w: u16,
    },
    Sub {
        a: NodeRef,
        b: NodeRef,
        w: u16,
    },
    /// `(a >> lo) & ((1 << w) - 1)` — contiguous planes in MSB-first layout.
    Slice {
        a: NodeRef,
        lo: u16,
        w: u16,
    },
    /// Zero-extension to `w` planes.
    ZExt {
        a: NodeRef,
        w: u16,
    },
    /// `hi * 2^width(lo) + lo`.
    Concat {
        hi: NodeRef,
        lo: NodeRef,
    },
}

/// Hash-consing builder of bit-sliced word-op programs.
///
/// # Example
///
/// ```
/// use sc_core::Builder;
/// use sc_protocol::Space;
///
/// let mut b = Builder::new();
/// let x = b.input(Space::Cur, 0, 4);
/// let one = b.constant(1, 1);
/// let inc = b.add_width(x, one, 5);
/// let prog = b.finalize(&[(inc, 0)]);
/// assert!(prog.arena_planes >= 5);
/// ```
#[derive(Default)]
pub struct Builder {
    nodes: Vec<Node>,
    widths: Vec<u16>,
    cache: HashMap<Node, NodeRef, BuildHasherDefault<FxHasher>>,
}

impl Builder {
    /// An empty DAG.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Result width (in planes) of `a`.
    pub fn width(&self, a: NodeRef) -> u16 {
        self.widths[a.0 as usize]
    }

    /// The constant value of `a`, when it folded to one.
    pub fn as_const(&self, a: NodeRef) -> Option<u64> {
        match self.nodes[a.0 as usize] {
            Node::Const { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Number of nodes built so far (CSE-deduplicated).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been built.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn intern(&mut self, node: Node, w: u16) -> NodeRef {
        if let Some(&r) = self.cache.get(&node) {
            return r;
        }
        let r = NodeRef(self.nodes.len() as u32);
        self.nodes.push(node);
        self.widths.push(w);
        self.cache.insert(node, r);
        r
    }

    /// A load from an input arena: `w` planes at `off` in `space`.
    pub fn input(&mut self, space: Space, off: u32, w: u16) -> NodeRef {
        self.intern(Node::Input { space, off, w }, w)
    }

    /// A lane-uniform constant of `w` planes.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `w` bits.
    pub fn constant(&mut self, value: u64, w: u16) -> NodeRef {
        assert!(
            w as u32 >= 64 || value < (1u64 << w),
            "constant {value} does not fit in {w} bits"
        );
        self.intern(Node::Const { value, w }, w)
    }

    fn mask(w: u16) -> u64 {
        if w as u32 >= 64 {
            u64::MAX
        } else {
            (1u64 << w) - 1
        }
    }

    /// Bitwise complement.
    pub fn not(&mut self, a: NodeRef) -> NodeRef {
        let w = self.width(a);
        if let Some(v) = self.as_const(a) {
            return self.constant(!v & Self::mask(w), w);
        }
        if let Node::Not(inner) = self.nodes[a.0 as usize] {
            return inner;
        }
        self.intern(Node::Not(a), w)
    }

    fn logic(
        &mut self,
        a: NodeRef,
        b: NodeRef,
        f: fn(u64, u64) -> u64,
        make: fn(NodeRef, NodeRef) -> Node,
    ) -> NodeRef {
        let w = self.width(a);
        assert_eq!(w, self.width(b), "logic op width mismatch");
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.constant(f(x, y) & Self::mask(w), w);
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern(make(a, b), w)
    }

    /// Bitwise AND (equal widths).
    pub fn and(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        let w = self.width(a);
        if a == b {
            return a;
        }
        for (x, y) in [(a, b), (b, a)] {
            match self.as_const(x) {
                Some(0) => return self.constant(0, w),
                Some(v) if v == Self::mask(w) => return y,
                _ => {}
            }
        }
        self.logic(a, b, |x, y| x & y, Node::And)
    }

    /// Bitwise OR (equal widths).
    pub fn or(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        let w = self.width(a);
        if a == b {
            return a;
        }
        for (x, y) in [(a, b), (b, a)] {
            match self.as_const(x) {
                Some(0) => return y,
                Some(v) if v == Self::mask(w) => return self.constant(Self::mask(w), w),
                _ => {}
            }
        }
        self.logic(a, b, |x, y| x | y, Node::Or)
    }

    /// Bitwise XOR (equal widths).
    pub fn xor(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        let w = self.width(a);
        if a == b {
            return self.constant(0, w);
        }
        for (x, y) in [(a, b), (b, a)] {
            if self.as_const(x) == Some(0) {
                return y;
            }
        }
        self.logic(a, b, |x, y| x ^ y, Node::Xor)
    }

    /// Per-lane select: `c ? a : b`. `c` must be 1 plane; `a`/`b` equal
    /// widths.
    pub fn mux(&mut self, c: NodeRef, a: NodeRef, b: NodeRef) -> NodeRef {
        assert_eq!(self.width(c), 1, "mux condition must be one plane");
        let w = self.width(a);
        assert_eq!(w, self.width(b), "mux arm width mismatch");
        match self.as_const(c) {
            Some(1) => return a,
            Some(0) => return b,
            _ => {}
        }
        if a == b {
            return a;
        }
        if w == 1 {
            // 1-bit arms reduce to pure logic, unlocking further folding.
            if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
                return match (x, y) {
                    (1, 0) => c,
                    (0, 1) => self.not(c),
                    _ => unreachable!("consts folded by the arms above"),
                };
            }
        }
        self.intern(Node::Mux { c, a, b }, w)
    }

    /// Single-plane `a == b`; the narrower operand is zero-extended.
    pub fn eq(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        if a == b {
            return self.constant(1, 1);
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.constant(u64::from(x == y), 1);
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern(Node::Eq(a, b), 1)
    }

    /// Single-plane unsigned `a < b`; the narrower operand is zero-extended.
    pub fn lt(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        if a == b {
            return self.constant(0, 1);
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.constant(u64::from(x < y), 1);
        }
        self.intern(Node::Lt(a, b), 1)
    }

    /// `(a + b) mod 2^w` with result width `w`; operands zero-extend.
    pub fn add_width(&mut self, a: NodeRef, b: NodeRef, w: u16) -> NodeRef {
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.constant(x.wrapping_add(y) & Self::mask(w), w);
        }
        if self.as_const(a) == Some(0) && self.width(b) == w {
            return b;
        }
        if self.as_const(b) == Some(0) && self.width(a) == w {
            return a;
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern(Node::Add { a, b, w }, w)
    }

    /// `(a - b) mod 2^w` with result width `w`; operands zero-extend.
    pub fn sub_width(&mut self, a: NodeRef, b: NodeRef, w: u16) -> NodeRef {
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.constant(x.wrapping_sub(y) & Self::mask(w), w);
        }
        if self.as_const(b) == Some(0) && self.width(a) == w {
            return a;
        }
        self.intern(Node::Sub { a, b, w }, w)
    }

    /// `(a >> lo) & ((1 << w) - 1)`: bits `lo..lo+w` of `a`.
    ///
    /// # Panics
    ///
    /// Panics if the slice reaches past `a`'s width.
    pub fn slice(&mut self, a: NodeRef, lo: u16, w: u16) -> NodeRef {
        let aw = self.width(a);
        assert!(lo + w <= aw, "slice {lo}..{} exceeds width {aw}", lo + w);
        if lo == 0 && w == aw {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.constant((v >> lo) & Self::mask(w), w);
        }
        if let Node::Slice {
            a: inner, lo: l0, ..
        } = self.nodes[a.0 as usize]
        {
            return self.slice(inner, l0 + lo, w);
        }
        self.intern(Node::Slice { a, lo, w }, w)
    }

    /// Zero-extends `a` to `w ≥ width(a)` planes.
    pub fn zext(&mut self, a: NodeRef, w: u16) -> NodeRef {
        let aw = self.width(a);
        assert!(w >= aw, "zext must not narrow ({aw} -> {w})");
        if w == aw {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.constant(v, w);
        }
        self.intern(Node::ZExt { a, w }, w)
    }

    /// `hi * 2^width(lo) + lo` — field concatenation, MSB side first.
    pub fn concat(&mut self, hi: NodeRef, lo: NodeRef) -> NodeRef {
        let w = self.width(hi) + self.width(lo);
        assert!(w as u32 <= 64, "concat width {w} exceeds u64");
        if let (Some(h), Some(l)) = (self.as_const(hi), self.as_const(lo)) {
            return self.constant((h << self.width(lo)) | l, w);
        }
        if self.as_const(hi) == Some(0) {
            return self.zext(lo, w);
        }
        self.intern(Node::Concat { hi, lo }, w)
    }

    // ---- derived helpers ------------------------------------------------

    /// `a == v` for a constant `v` (any width relation).
    pub fn eq_const(&mut self, a: NodeRef, v: u64) -> NodeRef {
        let w = (bits_for(v + 1).max(1)) as u16;
        let c = self.constant(v, w);
        self.eq(a, c)
    }

    /// Unsigned `a > v` for a constant `v`.
    pub fn gt_const(&mut self, a: NodeRef, v: u64) -> NodeRef {
        let w = (bits_for(v + 1).max(1)) as u16;
        let c = self.constant(v, w);
        self.lt(c, a)
    }

    /// Unsigned `a >= v` for a constant `v`.
    pub fn ge_const(&mut self, a: NodeRef, v: u64) -> NodeRef {
        let w = (bits_for(v + 1).max(1)) as u16;
        let c = self.constant(v, w);
        let lt = self.lt(a, c);
        self.not(lt)
    }

    /// Unsigned `a < v` for a constant `v`.
    pub fn lt_const(&mut self, a: NodeRef, v: u64) -> NodeRef {
        let w = (bits_for(v + 1).max(1)) as u16;
        let c = self.constant(v, w);
        self.lt(a, c)
    }

    /// `min(a, b)` (unsigned, equal widths).
    pub fn min(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        let c = self.lt(a, b);
        self.mux(c, a, b)
    }

    /// Population count of single-plane bits, as a
    /// `bits_for(len)`-wide value, built as a balanced adder tree.
    pub fn popcount(&mut self, bits: &[NodeRef]) -> NodeRef {
        assert!(!bits.is_empty(), "popcount of nothing");
        for &b in bits {
            assert_eq!(self.width(b), 1, "popcount inputs must be single planes");
        }
        let mut layer: Vec<NodeRef> = bits.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut it = layer.chunks(2);
            for pair in &mut it {
                match pair {
                    [a, b] => {
                        let w = self.width(*a).max(self.width(*b)) + 1;
                        next.push(self.add_width(*a, *b, w));
                    }
                    [a] => next.push(*a),
                    _ => unreachable!(),
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// Restoring long division by a constant: returns `(a / d, a % d)`.
    ///
    /// The remainder has width `bits_for(d)`, the quotient `width(a)`.
    ///
    /// # Panics
    ///
    /// Panics if `d < 2`.
    pub fn divmod_const(&mut self, a: NodeRef, d: u64) -> (NodeRef, NodeRef) {
        assert!(d >= 2, "divisor must be at least 2");
        if let Some(v) = self.as_const(a) {
            let qw = self.width(a);
            let rw = bits_for(d) as u16;
            return (
                self.constant(v / d, qw),
                self.constant((v % d) & Self::mask(rw), rw),
            );
        }
        let n = self.width(a);
        // Working remainder can reach 2d-1 before the restoring subtract.
        let rw = bits_for(2 * d) as u16;
        let dc = self.constant(d, rw);
        let mut rem = self.constant(0, rw);
        let mut q: Option<NodeRef> = None;
        for j in (0..n).rev() {
            let bit = self.slice(a, j, 1);
            // (rem << 1) | bit without an adder: drop the remainder's top
            // bit (it is always 0 after the restoring step) and append the
            // incoming dividend bit below.
            let kept = self.slice(rem, 0, rw - 1);
            rem = self.concat(kept, bit);
            let lt = self.lt(rem, dc);
            let ge = self.not(lt);
            let sub = self.sub_width(rem, dc, rw);
            rem = self.mux(ge, sub, rem);
            q = Some(match q {
                None => ge,
                Some(acc) => self.concat(acc, ge),
            });
        }
        let rem_final = self.slice(rem, 0, bits_for(d) as u16);
        (q.expect("width > 0"), rem_final)
    }

    /// DCE from the store roots, then emits bytecode.
    ///
    /// `stores` lists `(node, next_arena_plane_offset)` pairs; each live
    /// node gets a contiguous scratch range, topologically ordered by
    /// construction.
    pub fn finalize(&mut self, stores: &[(NodeRef, u32)]) -> Program {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeRef> = stores.iter().map(|&(r, _)| r).collect();
        while let Some(r) = stack.pop() {
            let i = r.0 as usize;
            if live[i] {
                continue;
            }
            live[i] = true;
            match self.nodes[i] {
                Node::Input { .. } | Node::Const { .. } => {}
                Node::Not(a) | Node::Slice { a, .. } | Node::ZExt { a, .. } => stack.push(a),
                Node::And(a, b)
                | Node::Or(a, b)
                | Node::Xor(a, b)
                | Node::Eq(a, b)
                | Node::Lt(a, b)
                | Node::Add { a, b, .. }
                | Node::Sub { a, b, .. }
                | Node::Concat { hi: a, lo: b } => {
                    stack.push(a);
                    stack.push(b);
                }
                Node::Mux { c, a, b } => {
                    stack.push(c);
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
        let mut offset = vec![u32::MAX; self.nodes.len()];
        let mut arena = 0u32;
        for i in 0..self.nodes.len() {
            if !live[i] {
                continue;
            }
            // A slice is a contiguous sub-range of its (earlier, hence
            // already placed) operand: alias it instead of copying. The
            // arena is SSA — every plane is written exactly once — so
            // read-only aliases are safe.
            if let Node::Slice { a, lo, w } = self.nodes[i] {
                let aw = self.widths[a.0 as usize];
                offset[i] = offset[a.0 as usize] + (aw - lo - w) as u32;
                continue;
            }
            offset[i] = arena;
            arena += self.widths[i] as u32;
        }
        let mut ops = Vec::new();
        for i in 0..self.nodes.len() {
            if !live[i] {
                continue;
            }
            let dst = offset[i];
            let w = self.widths[i];
            let pos = |r: NodeRef| offset[r.0 as usize];
            let wid = |r: NodeRef| self.widths[r.0 as usize];
            match self.nodes[i] {
                Node::Input { space, off, w } => ops.push(Op::Load { dst, space, off, w }),
                Node::Const { value, w } => ops.push(Op::Const { dst, value, w }),
                Node::Not(a) => ops.push(Op::Not { dst, a: pos(a), w }),
                Node::And(a, b) => ops.push(Op::And {
                    dst,
                    a: pos(a),
                    b: pos(b),
                    w,
                }),
                Node::Or(a, b) => ops.push(Op::Or {
                    dst,
                    a: pos(a),
                    b: pos(b),
                    w,
                }),
                Node::Xor(a, b) => ops.push(Op::Xor {
                    dst,
                    a: pos(a),
                    b: pos(b),
                    w,
                }),
                Node::Mux { c, a, b } => ops.push(Op::Mux {
                    dst,
                    c: pos(c),
                    a: pos(a),
                    b: pos(b),
                    w,
                }),
                Node::Eq(a, b) => ops.push(Op::Eq {
                    dst,
                    a: pos(a),
                    aw: wid(a),
                    b: pos(b),
                    bw: wid(b),
                }),
                Node::Lt(a, b) => ops.push(Op::Lt {
                    dst,
                    a: pos(a),
                    aw: wid(a),
                    b: pos(b),
                    bw: wid(b),
                }),
                Node::Add { a, b, w } => ops.push(Op::Add {
                    dst,
                    a: pos(a),
                    aw: wid(a),
                    b: pos(b),
                    bw: wid(b),
                    w,
                }),
                Node::Sub { a, b, w } => ops.push(Op::Sub {
                    dst,
                    a: pos(a),
                    aw: wid(a),
                    b: pos(b),
                    bw: wid(b),
                    w,
                }),
                // Slices are offset aliases into their operand (resolved
                // during placement above): no op, no copy.
                Node::Slice { .. } => {}
                Node::ZExt { a, w } => {
                    let aw = wid(a);
                    ops.push(Op::Const {
                        dst,
                        value: 0,
                        w: w - aw,
                    });
                    ops.push(Op::Copy {
                        dst: dst + (w - aw) as u32,
                        a: pos(a),
                        w: aw,
                    });
                }
                Node::Concat { hi, lo } => {
                    ops.push(Op::Copy {
                        dst,
                        a: pos(hi),
                        w: wid(hi),
                    });
                    ops.push(Op::Copy {
                        dst: dst + wid(hi) as u32,
                        a: pos(lo),
                        w: wid(lo),
                    });
                }
            }
        }
        for &(r, off) in stores {
            ops.push(Op::Store {
                src: offset[r.0 as usize],
                off,
                w: self.widths[r.0 as usize],
            });
        }
        Program {
            ops,
            arena_planes: arena,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_protocol::{BitVec, ExecSpaces, PlaneBuf};

    fn run_on_lanes(prog: &Program, cur: &PlaneBuf, out_planes: usize) -> PlaneBuf {
        let mut next = PlaneBuf::new(out_planes, cur.lane_words());
        let spaces = ExecSpaces {
            cur,
            ring: &[],
            packed: &[],
            gather: &[],
        };
        prog.exec(&spaces, &mut next, &mut Vec::new());
        next
    }

    fn pack_values(values: &[u64], width: u32) -> PlaneBuf {
        let mut buf = PlaneBuf::new(width as usize, values.len().div_ceil(64));
        for (lane, &v) in values.iter().enumerate() {
            let mut bits = BitVec::new();
            bits.push_bits(v, width);
            buf.pack_lane(lane, 0, &bits);
        }
        buf
    }

    #[test]
    fn cse_dedups_and_canonicalises() {
        let mut b = Builder::new();
        let x = b.input(Space::Cur, 0, 3);
        let y = b.input(Space::Cur, 3, 3);
        let p = b.and(x, y);
        let q = b.and(y, x);
        assert_eq!(p, q);
        let before = b.len();
        let _again = b.and(x, y);
        assert_eq!(b.len(), before);
    }

    #[test]
    fn constant_folding_collapses_subtrees() {
        let mut b = Builder::new();
        let c5 = b.constant(5, 4);
        let c3 = b.constant(3, 4);
        let sum = b.add_width(c5, c3, 4);
        assert_eq!(b.as_const(sum), Some(8));
        let (q, r) = b.divmod_const(sum, 3);
        assert_eq!(b.as_const(q), Some(2));
        assert_eq!(b.as_const(r), Some(2));
        let x = b.input(Space::Cur, 0, 4);
        let t = b.constant(1, 1);
        let m = b.mux(t, c5, x);
        assert_eq!(b.as_const(m), Some(5));
    }

    #[test]
    fn divmod_matches_scalar() {
        for d in [2u64, 3, 9, 15, 27] {
            let values: Vec<u64> = (0..128).map(|i| (i * 37 + 11) % 512).collect();
            let mut b = Builder::new();
            let a = b.input(Space::Cur, 0, 9);
            let (q, r) = b.divmod_const(a, d);
            let qw = b.width(q) as u32;
            let rw = b.width(r) as u32;
            let prog = b.finalize(&[(q, 0), (r, qw)]);
            let cur = pack_values(&values, 9);
            let next = run_on_lanes(&prog, &cur, (qw + rw) as usize);
            for (lane, &v) in values.iter().enumerate() {
                assert_eq!(
                    next.read_value(lane, 0, qw as usize),
                    v / d,
                    "q lane {lane} d {d}"
                );
                assert_eq!(
                    next.read_value(lane, qw as usize, rw as usize),
                    v % d,
                    "r lane {lane} d {d}"
                );
            }
        }
    }

    #[test]
    fn popcount_matches_scalar() {
        let values: Vec<u64> = (0..128).map(|i| (i * 97 + 13) % 128).collect();
        let mut b = Builder::new();
        let bits: Vec<NodeRef> = (0..7).map(|i| b.input(Space::Cur, i, 1)).collect();
        let pc = b.popcount(&bits);
        let w = b.width(pc) as u32;
        let prog = b.finalize(&[(pc, 0)]);
        let cur = pack_values(&values, 7);
        let next = run_on_lanes(&prog, &cur, w as usize);
        for (lane, &v) in values.iter().enumerate() {
            assert_eq!(
                next.read_value(lane, 0, w as usize),
                u64::from(v.count_ones()),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn slice_concat_zext_round_trip() {
        let values: Vec<u64> = (0..100).map(|i| (i * 73 + 5) % 256).collect();
        let mut b = Builder::new();
        let a = b.input(Space::Cur, 0, 8);
        let hi = b.slice(a, 4, 4);
        let lo = b.slice(a, 0, 4);
        let back = b.concat(hi, lo);
        let wide = b.zext(lo, 8);
        let prog = b.finalize(&[(back, 0), (wide, 8)]);
        let cur = pack_values(&values, 8);
        let next = run_on_lanes(&prog, &cur, 16);
        for (lane, &v) in values.iter().enumerate() {
            assert_eq!(next.read_value(lane, 0, 8), v, "concat lane {lane}");
            assert_eq!(next.read_value(lane, 8, 8), v & 0xf, "zext lane {lane}");
        }
    }

    #[test]
    fn comparison_helpers_match_scalar() {
        let values: Vec<u64> = (0..128).map(|i| i % 20).collect();
        let mut b = Builder::new();
        let a = b.input(Space::Cur, 0, 5);
        let eq7 = b.eq_const(a, 7);
        let gt7 = b.gt_const(a, 7);
        let ge7 = b.ge_const(a, 7);
        let lt7 = b.lt_const(a, 7);
        let prog = b.finalize(&[(eq7, 0), (gt7, 1), (ge7, 2), (lt7, 3)]);
        let cur = pack_values(&values, 5);
        let next = run_on_lanes(&prog, &cur, 4);
        for (lane, &v) in values.iter().enumerate() {
            assert_eq!(next.lane_bit(0, lane), v == 7, "eq lane {lane}");
            assert_eq!(next.lane_bit(1, lane), v > 7, "gt lane {lane}");
            assert_eq!(next.lane_bit(2, lane), v >= 7, "ge lane {lane}");
            assert_eq!(next.lane_bit(3, lane), v < 7, "lt lane {lane}");
        }
    }

    #[test]
    fn min_and_mux_fold() {
        let mut b = Builder::new();
        let c2 = b.constant(2, 3);
        let c5 = b.constant(5, 3);
        let m = b.min(c5, c2);
        assert_eq!(b.as_const(m), Some(2));
        // 1-bit mux with constant arms reduces to the condition itself.
        let c = b.input(Space::Cur, 0, 1);
        let one = b.constant(1, 1);
        let zero = b.constant(0, 1);
        assert_eq!(b.mux(c, one, zero), c);
        let n = b.mux(c, zero, one);
        let nn = b.not(n);
        assert_eq!(nn, c);
    }

    #[test]
    fn dce_drops_unreferenced_nodes() {
        let mut b = Builder::new();
        let x = b.input(Space::Cur, 0, 4);
        let y = b.input(Space::Cur, 4, 4);
        let _dead = b.add_width(x, y, 5);
        let keep = b.not(x);
        let prog = b.finalize(&[(keep, 0)]);
        // Only the input load, the not, and the store should survive.
        assert_eq!(prog.ops.len(), 3);
    }
}
