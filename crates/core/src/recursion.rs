//! The recursive constructions (§4): Corollary 1, Theorem 2, Theorem 3.

use sc_protocol::{checked_pow_u64, Counter as _, ParamError, SyncProtocol as _};

use crate::algorithm::Algorithm;

/// One boosting level of a planned recursion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Level {
    k: usize,
    f: usize,
}

/// Builder for recursive counter stacks.
///
/// Starts from the trivial one-node counter and applies Theorem 1 level by
/// level, deriving the modulus chain automatically: level `ℓ` requires its
/// inner counter to count modulo `c_req(ℓ) = 3(F_ℓ+2+s)·(2m_ℓ)^{k_ℓ}`, so
/// the builder sets each level's output modulus to the next level's
/// requirement and the topmost to [`CounterBuilder::with_modulus`]
/// (default 2, i.e. the synchronous 2-counters of Table 1).
///
/// Convenience constructors implement the paper's schedules:
///
/// * [`CounterBuilder::corollary1`] — `k = 3f+1` single-node blocks:
///   optimal resilience `f < n/3`, stabilisation `f^{O(f)}`.
/// * [`CounterBuilder::theorem2`] — a fixed number of blocks per level.
/// * [`CounterBuilder::theorem3`] — the varying-`k` schedule with phases
///   `k_p = 4·2^{P−p}`, `R_p = 2k_p`, giving `f = n^{1−o(1)}`, `O(f)` time
///   and `O(log² f / log log f)` space.
///
/// # Example
///
/// The Figure 2 stack `A(4,1) → A(12,3) → A(36,7)`:
///
/// ```
/// use sc_core::CounterBuilder;
/// use sc_protocol::{Counter, SyncProtocol};
///
/// let builder = CounterBuilder::corollary1(1, 2)?.boost(3)?.boost(3)?;
/// assert_eq!((builder.n(), builder.f()), (36, 7));
/// let a36 = builder.build()?;
/// assert_eq!(a36.n(), 36);
/// assert_eq!(a36.resilience(), 7);
/// # Ok::<(), sc_protocol::ParamError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CounterBuilder {
    levels: Vec<Level>,
    modulus: u64,
    king_slack: u64,
}

/// Summary of one level of a built recursion, from the base (level 0)
/// upwards; produced by [`CounterBuilder::plan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelPlan {
    /// Level index; 0 is the base counter.
    pub level: usize,
    /// Nodes at this level.
    pub n: usize,
    /// Resilience at this level.
    pub f: usize,
    /// Blocks used by this level's boosting step (0 for the base).
    pub k: usize,
    /// Output modulus `C` of this level.
    pub modulus: u64,
    /// Cumulative proven space `S` in bits.
    pub state_bits: u32,
    /// Cumulative proven stabilisation time `T` in rounds.
    pub time_bound: u64,
}

/// `c_req = 3(f+2+slack)·(2m)^k` for one level, checked.
fn level_c_req(k: usize, f: usize, slack: u64) -> Result<u64, ParamError> {
    let tau = 3 * (f as u64 + 2 + slack);
    let two_m = 2 * k.div_ceil(2) as u64;
    tau.checked_mul(checked_pow_u64(two_m, k as u32, "(2m)^k")?)
        .ok_or_else(|| ParamError::overflow("c_req = τ·(2m)^k"))
}

impl CounterBuilder {
    /// A builder holding just the trivial one-node counter.
    pub fn trivial() -> Self {
        CounterBuilder {
            levels: Vec::new(),
            modulus: 2,
            king_slack: 0,
        }
    }

    /// Corollary 1: an `f`-resilient `c`-counter on `3f+1` nodes, built from
    /// `k = 3f+1` single-node blocks. `f = 0` yields the bare trivial
    /// counter.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the parameters overflow (large `f`: the
    /// stabilisation time is `f^{O(f)}`).
    pub fn corollary1(f: usize, c: u64) -> Result<Self, ParamError> {
        let builder = Self::trivial().with_modulus(c);
        if f == 0 {
            return Ok(builder);
        }
        builder.boost_with_resilience(3 * f + 1, f)
    }

    /// Theorem 2 flavour: the Corollary 1 base `A(4, 1)` boosted `levels`
    /// times with a fixed `k` blocks, maximal resilience at every level.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `k < 3` or a level overflows.
    pub fn theorem2(k: usize, levels: usize, c: u64) -> Result<Self, ParamError> {
        let mut builder = Self::corollary1(1, c)?;
        for _ in 0..levels {
            builder = builder.boost(k)?;
        }
        Ok(builder)
    }

    /// Theorem 3: `phases` phases with `k_p = 4·2^{P−p}` blocks and
    /// `R_p = 2k_p` levels per phase, over the `A(4, 1)` base.
    ///
    /// Note the resulting networks are astronomically large for `P ≥ 2`;
    /// use [`CounterBuilder::plan`] for the analytic bounds and simulate
    /// truncated stacks instead.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if a level's parameters overflow `u64`.
    pub fn theorem3(phases: u32, c: u64) -> Result<Self, ParamError> {
        if phases == 0 {
            return Err(ParamError::constraint("theorem 3 needs at least one phase"));
        }
        let mut builder = Self::corollary1(1, c)?;
        for p in 1..=phases {
            let k_p = 4usize << (phases - p);
            for _ in 0..2 * k_p {
                builder = builder.boost(k_p)?;
            }
        }
        Ok(builder)
    }

    /// Current network size.
    pub fn n(&self) -> usize {
        self.levels.iter().fold(1, |n, lv| n * lv.k)
    }

    /// Current resilience.
    pub fn f(&self) -> usize {
        self.levels.last().map_or(0, |lv| lv.f)
    }

    /// Sets the top-level counter modulus `c` (default 2).
    pub fn with_modulus(mut self, c: u64) -> Self {
        self.modulus = c;
        self
    }

    /// Requests `s` extra king groups per level (`τ = 3(F+2+s)`); the
    /// deterministic construction uses 0, the predictive pulling mode 1.
    pub fn with_king_slack(mut self, s: u64) -> Self {
        self.king_slack = s;
        self
    }

    /// Adds one Theorem 1 level with `k` blocks at the maximum admissible
    /// resilience `F = min{(f+1)⌈k/2⌉ − 1, ⌊(N−1)/3⌋, N − 2 − s}`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `k < 3` or the level overflows.
    pub fn boost(self, k: usize) -> Result<Self, ParamError> {
        if k < 3 {
            return Err(ParamError::constraint(format!(
                "need k ≥ 3 blocks, got {k}"
            )));
        }
        let (n, f) = (self.n(), self.f());
        let n_next = n
            .checked_mul(k)
            .ok_or_else(|| ParamError::overflow("N = k·n"))?;
        let by_blocks = (f + 1) * k.div_ceil(2) - 1;
        let by_n = (n_next - 1) / 3;
        let by_kings = (n_next as u64).saturating_sub(2 + self.king_slack) as usize;
        let f_next = by_blocks.min(by_n).min(by_kings);
        self.boost_with_resilience(k, f_next)
    }

    /// Adds one Theorem 1 level with `k` blocks and explicit resilience
    /// `f_total`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when the Theorem 1 preconditions fail for the
    /// current `(n, f)`.
    pub fn boost_with_resilience(mut self, k: usize, f_total: usize) -> Result<Self, ParamError> {
        let (n, f) = (self.n(), self.f());
        // Validate now with a placeholder modulus (the real one is derived
        // at build time and cannot make validation stricter).
        crate::params::BoostParams::new(n, f, k, f_total, 2, self.king_slack)?;
        level_c_req(k, f_total, self.king_slack)?;
        self.levels.push(Level { k, f: f_total });
        Ok(self)
    }

    /// Builds the counter, deriving the modulus chain bottom-up.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if any level's parameters are inconsistent or
    /// overflow, or if the top-level modulus is < 2.
    pub fn build(&self) -> Result<Algorithm, ParamError> {
        if self.levels.is_empty() {
            return Algorithm::trivial(self.modulus);
        }
        let c_req: Vec<u64> = self
            .levels
            .iter()
            .map(|lv| level_c_req(lv.k, lv.f, self.king_slack))
            .collect::<Result<_, _>>()?;
        let mut algo = Algorithm::trivial(c_req[0])?;
        for (i, lv) in self.levels.iter().enumerate() {
            let c_out = if i + 1 < self.levels.len() {
                c_req[i + 1]
            } else {
                self.modulus
            };
            algo = Algorithm::boosted(algo, lv.k, lv.f, c_out, self.king_slack)?;
        }
        Ok(algo)
    }

    /// Builds the counter and summarises every level (base first).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterBuilder::build`].
    pub fn plan(&self) -> Result<Vec<LevelPlan>, ParamError> {
        let algo = self.build()?;
        let mut plans = Vec::new();
        collect_plans(&algo, &mut plans);
        plans.reverse();
        for (i, p) in plans.iter_mut().enumerate() {
            p.level = i;
        }
        Ok(plans)
    }
}

fn collect_plans(algo: &Algorithm, out: &mut Vec<LevelPlan>) {
    out.push(LevelPlan {
        level: 0, // fixed up by the caller
        n: algo.n(),
        f: algo.resilience(),
        k: algo.as_boosted_counter().map_or(0, |b| b.params().k()),
        modulus: algo.modulus(),
        state_bits: algo.state_bits(),
        time_bound: algo.stabilization_bound(),
    });
    if let Some(b) = algo.as_boosted_counter() {
        collect_plans(b.inner(), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corollary1_matches_paper_parameters() {
        let a = CounterBuilder::corollary1(1, 8).unwrap().build().unwrap();
        assert_eq!(a.n(), 4);
        assert_eq!(a.resilience(), 1);
        assert_eq!(a.modulus(), 8);
        // T ≤ 3(F+2)(2m)^k = 9·256 = 2304 on top of the instant base.
        assert_eq!(a.stabilization_bound(), 2304);
        // S = ⌈log 2304⌉ + ⌈log 9⌉ + 1 = 12 + 4 + 1.
        assert_eq!(a.state_bits(), 17);
    }

    #[test]
    fn corollary1_zero_faults_is_trivial() {
        let a = CounterBuilder::corollary1(0, 4).unwrap().build().unwrap();
        assert_eq!(a.n(), 1);
        assert_eq!(a.depth(), 0);
        assert_eq!(a.modulus(), 4);
    }

    #[test]
    fn figure2_stack_dimensions() {
        let b = CounterBuilder::corollary1(1, 2)
            .unwrap()
            .boost(3)
            .unwrap()
            .boost(3)
            .unwrap();
        assert_eq!((b.n(), b.f()), (36, 7));
        let plans = b.plan().unwrap();
        let dims: Vec<(usize, usize)> = plans.iter().map(|p| (p.n, p.f)).collect();
        assert_eq!(dims, vec![(1, 0), (4, 1), (12, 3), (36, 7)]);
        // Modulus chain: each level counts modulo the next level's c_req.
        assert_eq!(plans[0].modulus, 2304); // 9·4^4
        assert_eq!(plans[1].modulus, 960); // 15·4^3 (F=3 ⇒ τ=15)
        assert_eq!(plans[2].modulus, 1728); // 27·4^3 (F=7 ⇒ τ=27)
        assert_eq!(plans[3].modulus, 2);
        // Time bounds telescope.
        assert_eq!(plans[3].time_bound, 2304 + 960 + 1728);
    }

    #[test]
    fn theorem2_grows_resilience_geometrically() {
        let b = CounterBuilder::theorem2(4, 3, 2).unwrap();
        // f: 1 → 3 → 7 → 15 with k = 4 (m = 2, F = 2f+1).
        assert_eq!(b.f(), 15);
        assert_eq!(b.n(), 4 * 64);
        let a = b.build().unwrap();
        assert_eq!(a.depth(), 4);
        // Stabilisation stays linear-ish in f: each level adds 3(F+2)·4^4.
        let plans = b.plan().unwrap();
        for w in plans.windows(2) {
            assert!(w[1].time_bound > w[0].time_bound);
        }
    }

    #[test]
    fn theorem3_schedule_shape() {
        // P = 1: eight levels of k = 4 on top of the base.
        let b = CounterBuilder::theorem3(1, 2).unwrap();
        let plans = b.plan().unwrap();
        assert_eq!(plans.len(), 10); // base + corollary1 + 8 levels
        assert!(plans.iter().skip(2).all(|p| p.k == 4));
        // Space grows additively by Θ(log c_req) per level, far below n.
        let top = plans.last().unwrap();
        assert!(top.n >= 262_144);
        assert!(
            top.state_bits < 200,
            "space stays polylogarithmic: {}",
            top.state_bits
        );
    }

    #[test]
    fn theorem3_phase2_overflows_gracefully_or_builds() {
        // P = 2 must either build or fail with a typed overflow — no panic.
        match CounterBuilder::theorem3(2, 2) {
            Ok(b) => {
                let _ = b.plan();
            }
            Err(ParamError::Overflow { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn king_slack_flows_into_the_plan() {
        let plain = CounterBuilder::corollary1(1, 8).unwrap().build().unwrap();
        let slack = CounterBuilder::trivial()
            .with_modulus(8)
            .with_king_slack(1)
            .boost_with_resilience(4, 1)
            .unwrap()
            .build()
            .unwrap();
        // τ grows 9 → 12, so the time bound grows 2304 → 3072.
        assert_eq!(plain.stabilization_bound(), 2304);
        assert_eq!(slack.stabilization_bound(), 3072);
    }

    #[test]
    fn boost_rejects_small_k() {
        assert!(CounterBuilder::trivial().boost(2).is_err());
    }

    #[test]
    fn build_with_degenerate_modulus_fails() {
        let b = CounterBuilder::corollary1(1, 1).unwrap();
        assert!(b.build().is_err());
    }
}
