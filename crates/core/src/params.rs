//! Parameters of the resilience-boosting construction (Theorem 1).

use sc_consensus::PhaseKingParams;
use sc_protocol::{checked_pow_u64, NodeId, ParamError};

/// Validated parameters of one application of Theorem 1.
///
/// Given an inner counter `A ∈ A(n, f, c)`, the boosted counter runs on
/// `N = k·n` nodes split into `k` blocks of `n` nodes, tolerates
/// `F < (f+1)·m` faults where `m = ⌈k/2⌉`, and outputs values modulo a
/// caller-chosen `C > 1`. The inner counter's modulus must be a multiple of
///
/// ```text
/// c_req = τ·(2m)^k,   τ = 3·(F + 2 + s)
/// ```
///
/// where `s` is the optional *king slack* (0 in the paper; the predictive
/// pulling mode of `sc-pulling` uses `s = 1`, see DESIGN.md §2.5).
///
/// # Example
///
/// ```
/// use sc_core::BoostParams;
///
/// // Corollary 1 for f = 1: k = 4 blocks of the trivial one-node counter.
/// let p = BoostParams::new(1, 0, 4, 1, 8, 0)?;
/// assert_eq!(p.n_total(), 4);
/// assert_eq!(p.tau(), 9);          // 3(F+2) = 9
/// assert_eq!(p.c_req(), 2304);     // 9 · 4^4
/// assert_eq!(p.time_overhead(), 2304);
/// # Ok::<(), sc_protocol::ParamError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoostParams {
    n_inner: usize,
    f_inner: usize,
    k: usize,
    m: usize,
    n_total: usize,
    f_total: usize,
    c_out: u64,
    king_slack: u64,
    tau: u64,
    c_req: u64,
    pk: PhaseKingParams,
}

impl BoostParams {
    /// Validates the preconditions of Theorem 1 and derives all quantities.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when any precondition fails:
    /// `k ≥ 3`, `3·f_inner < n_inner`, `F < (f+1)·⌈k/2⌉`, `N > 3F`,
    /// `C > 1`, or when `τ·(2m)^k` overflows `u64`.
    pub fn new(
        n_inner: usize,
        f_inner: usize,
        k: usize,
        f_total: usize,
        c_out: u64,
        king_slack: u64,
    ) -> Result<Self, ParamError> {
        if k < 3 {
            return Err(ParamError::constraint(format!(
                "need k ≥ 3 blocks, got {k}"
            )));
        }
        if n_inner == 0 {
            return Err(ParamError::constraint(
                "blocks must contain at least one node",
            ));
        }
        if 3 * f_inner >= n_inner {
            return Err(ParamError::constraint(format!(
                "inner counter needs f < n/3, got n = {n_inner}, f = {f_inner}"
            )));
        }
        let m = k.div_ceil(2);
        if f_total >= (f_inner + 1) * m {
            return Err(ParamError::constraint(format!(
                "resilience F = {f_total} violates F < (f+1)·⌈k/2⌉ = {}",
                (f_inner + 1) * m
            )));
        }
        let n_total = n_inner
            .checked_mul(k)
            .ok_or_else(|| ParamError::overflow("N = k·n"))?;
        let king_groups = f_total as u64 + 2 + king_slack;
        let pk = PhaseKingParams::with_king_groups(n_total, f_total, c_out, king_groups)?;
        let tau = pk.slots();
        let two_m = 2 * m as u64;
        let c_req = tau
            .checked_mul(checked_pow_u64(two_m, k as u32, "(2m)^k")?)
            .ok_or_else(|| ParamError::overflow("c_req = τ·(2m)^k"))?;
        Ok(BoostParams {
            n_inner,
            f_inner,
            k,
            m,
            n_total,
            f_total,
            c_out,
            king_slack,
            tau,
            c_req,
            pk,
        })
    }

    /// Nodes per block (the inner counter's `n`).
    pub fn n_inner(&self) -> usize {
        self.n_inner
    }

    /// Inner resilience `f` assumed of each block's counter.
    pub fn f_inner(&self) -> usize {
        self.f_inner
    }

    /// Number of blocks `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `m = ⌈k/2⌉`: the number of candidate leader blocks.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total nodes `N = k·n`.
    pub fn n_total(&self) -> usize {
        self.n_total
    }

    /// Boosted resilience `F`.
    pub fn f_total(&self) -> usize {
        self.f_total
    }

    /// Output counter size `C`.
    pub fn c_out(&self) -> u64 {
        self.c_out
    }

    /// Extra king groups beyond the paper's `F+2` (0 = paper-exact).
    pub fn king_slack(&self) -> u64 {
        self.king_slack
    }

    /// Slot-counter period `τ = 3·(F + 2 + slack)`.
    pub fn tau(&self) -> u64 {
        self.tau
    }

    /// Required divisor of the inner modulus, `τ·(2m)^k`.
    pub fn c_req(&self) -> u64 {
        self.c_req
    }

    /// Additive stabilisation-time overhead of this level,
    /// `3(F+2+s)(2m)^k = c_req` (Theorem 1).
    pub fn time_overhead(&self) -> u64 {
        self.c_req
    }

    /// Additive state overhead of this level, `⌈log₂(C+1)⌉ + 1` bits.
    pub fn state_overhead_bits(&self) -> u32 {
        sc_protocol::bits_for(self.c_out + 1) + 1
    }

    /// The phase-king parameters controlling slots and thresholds.
    pub fn pk(&self) -> &PhaseKingParams {
        &self.pk
    }

    /// The modulus `c_i = τ·(2m)^{i+1}` by which block `i` interprets its
    /// counter (§3.2).
    ///
    /// # Panics
    ///
    /// Panics if `block ≥ k`.
    pub fn block_modulus(&self, block: usize) -> u64 {
        assert!(
            block < self.k,
            "block {block} out of range (k = {})",
            self.k
        );
        // (2m)^{block+1} divides (2m)^k = c_req/τ, so this cannot overflow.
        self.tau * (2 * self.m as u64).pow(block as u32 + 1)
    }

    /// Decomposes a raw inner counter value of a node in `block` into the
    /// paper's `(r, y, b)` triple: the slot counter `r ∈ [τ]`, the overflow
    /// counter `y`, and the leader pointer `b = ⌊y/(2m)^i⌋ mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `block ≥ k`.
    pub fn pointer(&self, block: usize, counter_value: u64) -> Pointer {
        let v = counter_value % self.block_modulus(block);
        let r = v % self.tau;
        let y = v / self.tau;
        let b = ((y / (2 * self.m as u64).pow(block as u32)) % self.m as u64) as usize;
        Pointer { r, y, b }
    }

    /// Splits a flat node id into `(block, index within block)`.
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the boosted network.
    pub fn block_of(&self, node: NodeId) -> (usize, usize) {
        assert!(
            node.index() < self.n_total,
            "node {node} outside N = {}",
            self.n_total
        );
        (node.index() / self.n_inner, node.index() % self.n_inner)
    }

    /// Flat node id of member `j` of `block`.
    pub fn member(&self, block: usize, j: usize) -> NodeId {
        debug_assert!(block < self.k && j < self.n_inner);
        NodeId::new(block * self.n_inner + j)
    }
}

/// The `(r, y, b)` interpretation of a block counter value (§3.2):
/// `r` counts rounds modulo `τ`, `y` counts `r`-overflows, and `b` is the
/// block that this block currently *supports as leader*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Pointer {
    /// Slot counter `r ∈ [τ]`, incremented every round after stabilisation.
    pub r: u64,
    /// Overflow counter `y ∈ [(2m)^{i+1}]`.
    pub y: u64,
    /// Supported leader block `b ∈ [m]`.
    pub b: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corollary1_f1() -> BoostParams {
        BoostParams::new(1, 0, 4, 1, 8, 0).unwrap()
    }

    #[test]
    fn derived_quantities_match_the_paper() {
        let p = corollary1_f1();
        assert_eq!(p.m(), 2);
        assert_eq!(p.n_total(), 4);
        assert_eq!(p.tau(), 9);
        assert_eq!(p.c_req(), 9 * 256);
        assert_eq!(p.state_overhead_bits(), sc_protocol::bits_for(9) + 1);
        assert_eq!(p.pk().keep_threshold(), 3);
        assert_eq!(p.pk().adopt_threshold(), 1);
    }

    #[test]
    fn king_slack_extends_tau() {
        let p = BoostParams::new(1, 0, 4, 1, 8, 1).unwrap();
        assert_eq!(p.tau(), 12); // 3(F+2+1)
        assert_eq!(p.c_req(), 12 * 256);
    }

    #[test]
    fn block_moduli_divide_each_other() {
        let p = BoostParams::new(4, 1, 3, 3, 960, 0).unwrap();
        assert_eq!(p.tau(), 15);
        for i in 0..p.k() - 1 {
            assert_eq!(p.block_modulus(i + 1) % p.block_modulus(i), 0);
        }
        assert_eq!(p.block_modulus(p.k() - 1), p.c_req());
    }

    #[test]
    fn pointer_decomposition_is_consistent() {
        let p = BoostParams::new(4, 1, 3, 3, 960, 0).unwrap();
        for val in [0u64, 1, 14, 15, 959, 960, 12345] {
            for block in 0..p.k() {
                let ptr = p.pointer(block, val);
                assert!(ptr.r < p.tau());
                assert!(ptr.b < p.m());
                let v = val % p.block_modulus(block);
                assert_eq!(ptr.r + p.tau() * ptr.y, v);
            }
        }
    }

    #[test]
    fn pointer_dwell_time_matches_lemma_1() {
        // After stabilisation b changes only every c_{i-1} = τ(2m)^i rounds.
        let p = BoostParams::new(1, 0, 4, 1, 8, 0).unwrap();
        let dwell = |i: usize| p.tau() * (2 * p.m() as u64).pow(i as u32);
        for block in 0..p.k() {
            let mut changes = Vec::new();
            let mut last = p.pointer(block, 0).b;
            for v in 1..p.c_req() {
                let b = p.pointer(block, v).b;
                if b != last {
                    changes.push(v);
                    last = b;
                }
            }
            for w in changes.windows(2) {
                assert_eq!(w[1] - w[0], dwell(block), "block {block}");
            }
            // b cycles through [m] exactly twice per block period: within
            // one period there are 2m dwell segments.
            let period = p.block_modulus(block);
            let segments = changes.iter().filter(|&&v| v < period).count() + 1;
            assert_eq!(segments as u64, 2 * p.m() as u64);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(BoostParams::new(1, 0, 2, 1, 8, 0).is_err()); // k < 3
        assert!(BoostParams::new(0, 0, 4, 1, 8, 0).is_err()); // empty blocks
        assert!(BoostParams::new(3, 1, 4, 1, 8, 0).is_err()); // f ≥ n/3
        assert!(BoostParams::new(1, 0, 4, 2, 8, 0).is_err()); // F ≥ (f+1)m
        assert!(BoostParams::new(1, 0, 4, 1, 1, 0).is_err()); // C ≤ 1
                                                              // N > 3F can fail even when F < (f+1)m: k = 7, F = 3, N = 7.
        assert!(BoostParams::new(1, 0, 7, 3, 8, 0).is_err());
        // Overflow of (2m)^k.
        assert!(BoostParams::new(1, 0, 40, 10, 8, 0).is_err());
    }

    #[test]
    fn member_and_block_of_are_inverse() {
        let p = BoostParams::new(4, 1, 3, 3, 960, 0).unwrap();
        for v in 0..p.n_total() {
            let (b, j) = p.block_of(NodeId::new(v));
            assert_eq!(p.member(b, j), NodeId::new(v));
        }
    }
}
