//! The runtime-recursive counter algorithm type.

use rand::RngCore;
use sc_protocol::{
    BitReader, BitVec, CodecError, Counter, Fingerprint, MessageView, NodeId, ParamError,
    StepContext, SyncProtocol,
};

use crate::boosted::{BoostedCounter, BoostedState};
use crate::lut::{LutCounter, LutSpec};
use crate::params::BoostParams;
use crate::trivial::TrivialCounter;

/// A self-stabilising synchronous counter of this paper's family.
///
/// The recursion depth of Theorems 2–3 is chosen at runtime, so the
/// counter algebra is a closed enum rather than nested generic types:
///
/// * [`Algorithm::trivial`] — the one-node base counter,
/// * [`Algorithm::lut`] — a table-driven (synthesised) small counter,
/// * [`Algorithm::boosted`] — Theorem 1 applied to any inner `Algorithm`.
///
/// `Algorithm` implements [`SyncProtocol`] and [`Counter`], so any level of
/// the recursion runs directly on the simulator and reports its proven
/// bounds. Use [`crate::CounterBuilder`] for whole recursive stacks.
///
/// # Example
///
/// ```
/// use sc_core::Algorithm;
/// use sc_protocol::{Counter, SyncProtocol};
///
/// // A(4, 1): 4 blocks of the trivial counter (Corollary 1, f = 1).
/// let inner = Algorithm::trivial(2304)?; // 2304 = 3(F+2)·(2m)^k = 9·4^4
/// let a4 = Algorithm::boosted(inner, 4, 1, 8, 0)?;
/// assert_eq!(a4.n(), 4);
/// assert_eq!(a4.resilience(), 1);
/// assert_eq!(a4.modulus(), 8);
/// # Ok::<(), sc_protocol::ParamError>(())
/// ```
#[derive(Clone, Debug)]
pub enum Algorithm {
    /// The trivial one-node counter.
    Trivial(TrivialCounter),
    /// A table-driven small counter.
    Lut(LutCounter),
    /// A Theorem 1 boosting layer over an inner algorithm.
    Boosted(Box<BoostedCounter>),
}

/// The state of one node running an [`Algorithm`]; variants mirror the
/// algorithm variants.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CounterState {
    /// Counter value of the trivial counter.
    Trivial(u64),
    /// State index of a table-driven counter.
    Lut(u8),
    /// Inner state and phase-king registers of a boosted counter.
    Boosted(Box<BoostedState>),
}

impl CounterState {
    /// The trivial counter value.
    ///
    /// # Panics
    ///
    /// Panics if this state belongs to a different algorithm kind.
    #[track_caller]
    pub fn as_trivial(&self) -> u64 {
        match self {
            CounterState::Trivial(v) => *v,
            other => panic!("expected trivial state, got {other:?}"),
        }
    }

    /// The LUT state index.
    ///
    /// # Panics
    ///
    /// Panics if this state belongs to a different algorithm kind.
    #[track_caller]
    pub fn as_lut(&self) -> u8 {
        match self {
            CounterState::Lut(s) => *s,
            other => panic!("expected LUT state, got {other:?}"),
        }
    }

    /// The boosted state.
    ///
    /// # Panics
    ///
    /// Panics if this state belongs to a different algorithm kind.
    #[track_caller]
    pub fn as_boosted(&self) -> &BoostedState {
        match self {
            CounterState::Boosted(b) => b,
            other => panic!("expected boosted state, got {other:?}"),
        }
    }

    /// The inner counter state of a boosted state.
    ///
    /// # Panics
    ///
    /// Panics if this state belongs to a different algorithm kind.
    #[track_caller]
    pub fn as_boosted_inner(&self) -> &CounterState {
        &self.as_boosted().inner
    }
}

impl Algorithm {
    /// The trivial one-node `c`-counter (§4.1).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when `c < 2`.
    pub fn trivial(c: u64) -> Result<Self, ParamError> {
        Ok(Algorithm::Trivial(TrivialCounter::new(c)?))
    }

    /// A table-driven counter from explicit transition/output tables.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when the tables are malformed (see
    /// [`LutCounter::new`]).
    pub fn lut(spec: LutSpec) -> Result<Self, ParamError> {
        Ok(Algorithm::Lut(LutCounter::new(spec)?))
    }

    /// Theorem 1: boosts `inner` with `k` blocks to resilience `f_total`,
    /// output modulus `c_out`, and `king_slack` extra king groups
    /// (0 = paper-exact).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when the preconditions of Theorem 1 fail (see
    /// [`BoostParams::new`]) or `inner` does not match them (see
    /// [`BoostedCounter::new`]).
    pub fn boosted(
        inner: Algorithm,
        k: usize,
        f_total: usize,
        c_out: u64,
        king_slack: u64,
    ) -> Result<Self, ParamError> {
        let params =
            BoostParams::new(inner.n(), inner.resilience(), k, f_total, c_out, king_slack)?;
        Ok(Algorithm::Boosted(Box::new(BoostedCounter::new(
            inner, params,
        )?)))
    }

    /// The boosting layer, if this algorithm is a boosted counter.
    pub fn as_boosted_counter(&self) -> Option<&BoostedCounter> {
        match self {
            Algorithm::Boosted(b) => Some(b),
            _ => None,
        }
    }

    /// Number of boosting layers above the base counter.
    pub fn depth(&self) -> usize {
        match self {
            Algorithm::Boosted(b) => 1 + b.inner().depth(),
            _ => 0,
        }
    }
}

impl SyncProtocol for Algorithm {
    type State = CounterState;

    fn n(&self) -> usize {
        match self {
            Algorithm::Trivial(_) => 1,
            Algorithm::Lut(l) => l.spec().n,
            Algorithm::Boosted(b) => b.params().n_total(),
        }
    }

    fn step(
        &self,
        node: NodeId,
        view: &MessageView<'_, CounterState>,
        ctx: &mut StepContext<'_>,
    ) -> CounterState {
        match self {
            Algorithm::Trivial(t) => CounterState::Trivial(t.next(view.get(node).as_trivial())),
            Algorithm::Lut(l) => {
                let received: Vec<u8> = view.iter().map(|s| l.clamp(s.as_lut())).collect();
                CounterState::Lut(l.next(node.index(), &received))
            }
            Algorithm::Boosted(b) => CounterState::Boosted(Box::new(b.step(node, view, ctx))),
        }
    }

    fn output(&self, node: NodeId, state: &CounterState) -> u64 {
        match self {
            Algorithm::Trivial(t) => state.as_trivial() % t.modulus(),
            Algorithm::Lut(l) => l.output(node.index(), state.as_lut()),
            Algorithm::Boosted(b) => state.as_boosted().regs.output(b.params().c_out()),
        }
    }

    fn random_state(&self, node: NodeId, rng: &mut dyn RngCore) -> CounterState {
        match self {
            Algorithm::Trivial(t) => CounterState::Trivial(rng.next_u64() % t.modulus()),
            Algorithm::Lut(l) => CounterState::Lut(l.clamp(rng.next_u64() as u8)),
            Algorithm::Boosted(b) => CounterState::Boosted(Box::new(b.random_state(node, rng))),
        }
    }
}

impl Counter for Algorithm {
    fn modulus(&self) -> u64 {
        match self {
            Algorithm::Trivial(t) => t.modulus(),
            Algorithm::Lut(l) => l.spec().c,
            Algorithm::Boosted(b) => b.params().c_out(),
        }
    }

    fn resilience(&self) -> usize {
        match self {
            Algorithm::Trivial(_) => 0,
            Algorithm::Lut(l) => l.spec().f,
            Algorithm::Boosted(b) => b.params().f_total(),
        }
    }

    fn state_bits(&self) -> u32 {
        match self {
            Algorithm::Trivial(t) => t.state_bits(),
            Algorithm::Lut(l) => l.state_bits(),
            Algorithm::Boosted(b) => b.inner().state_bits() + b.params().state_overhead_bits(),
        }
    }

    fn stabilization_bound(&self) -> u64 {
        match self {
            Algorithm::Trivial(_) => 0,
            Algorithm::Lut(l) => l.spec().stabilization_bound,
            Algorithm::Boosted(b) => b.inner().stabilization_bound() + b.params().time_overhead(),
        }
    }

    fn encode_state(&self, node: NodeId, state: &CounterState, out: &mut BitVec) {
        match self {
            Algorithm::Trivial(t) => out.push_bits(state.as_trivial(), t.state_bits()),
            Algorithm::Lut(l) => out.push_bits(u64::from(state.as_lut()), l.state_bits()),
            Algorithm::Boosted(b) => {
                let s = state.as_boosted();
                let (_, local) = b.params().block_of(node);
                b.inner().encode_state(NodeId::new(local), &s.inner, out);
                s.regs.encode(b.params().c_out(), out);
            }
        }
    }

    fn decode_state(
        &self,
        node: NodeId,
        input: &mut BitReader<'_>,
    ) -> Result<CounterState, CodecError> {
        match self {
            Algorithm::Trivial(t) => {
                let raw = input.read_bits(t.state_bits())?;
                if raw >= t.modulus() {
                    return Err(CodecError::InvalidField {
                        field: "trivial counter",
                        value: raw,
                    });
                }
                Ok(CounterState::Trivial(raw))
            }
            Algorithm::Lut(l) => {
                let raw = input.read_bits(l.state_bits())?;
                if raw >= u64::from(l.states()) {
                    return Err(CodecError::InvalidField {
                        field: "LUT state",
                        value: raw,
                    });
                }
                Ok(CounterState::Lut(raw as u8))
            }
            Algorithm::Boosted(b) => {
                let (_, local) = b.params().block_of(node);
                let inner = b.inner().decode_state(NodeId::new(local), input)?;
                let regs = sc_consensus::PkRegisters::decode(b.params().c_out(), input)?;
                Ok(CounterState::Boosted(Box::new(BoostedState {
                    inner,
                    regs,
                })))
            }
        }
    }
}

impl Fingerprint for Algorithm {
    fn deterministic_transition(&self) -> bool {
        // Every counter of the §3–§4 constructions is deterministic: the
        // trivial counter increments, LUT counters index tables, and the
        // boosted transition is majority votes + phase-king instructions —
        // none touches the `StepContext` entropy source (the
        // `deterministic_protocols_replay_identically` tests enforce this).
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn trivial_counts_through_the_trait() {
        let a = Algorithm::trivial(5).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let states = vec![CounterState::Trivial(4)];
        let view = MessageView::new(&states, &[]);
        let mut ctx = StepContext::new(&mut rng);
        let next = a.step(NodeId::new(0), &view, &mut ctx);
        assert_eq!(next, CounterState::Trivial(0));
        assert_eq!(a.output(NodeId::new(0), &next), 0);
    }

    #[test]
    fn trivial_bounds() {
        let a = Algorithm::trivial(2304).unwrap();
        assert_eq!(a.state_bits(), 12);
        assert_eq!(a.stabilization_bound(), 0);
        assert_eq!(a.resilience(), 0);
        assert_eq!(a.depth(), 0);
    }

    #[test]
    fn codec_round_trip_trivial() {
        let a = Algorithm::trivial(100).unwrap();
        for v in [0u64, 1, 63, 99] {
            let s = CounterState::Trivial(v);
            let mut bits = BitVec::new();
            a.encode_state(NodeId::new(0), &s, &mut bits);
            assert_eq!(bits.len() as u32, a.state_bits());
            let back = a.decode_state(NodeId::new(0), &mut bits.reader()).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn codec_rejects_out_of_range_trivial() {
        let a = Algorithm::trivial(100).unwrap();
        let mut bits = BitVec::new();
        bits.push_bits(101, 7);
        assert!(a.decode_state(NodeId::new(0), &mut bits.reader()).is_err());
    }

    #[test]
    fn boosted_codec_round_trips_random_states() {
        let inner = Algorithm::trivial(2304).unwrap();
        let a = Algorithm::boosted(inner, 4, 1, 8, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        for node in 0..4 {
            for _ in 0..50 {
                let id = NodeId::new(node);
                let s = a.random_state(id, &mut rng);
                let mut bits = BitVec::new();
                a.encode_state(id, &s, &mut bits);
                assert_eq!(bits.len() as u32, a.state_bits(), "codec width = S(A)");
                let back = a.decode_state(id, &mut bits.reader()).unwrap();
                assert_eq!(back, s);
            }
        }
    }

    #[test]
    #[should_panic(expected = "expected trivial state")]
    fn mismatched_state_kind_panics() {
        let s = CounterState::Lut(0);
        let _ = s.as_trivial();
    }
}
