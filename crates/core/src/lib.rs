//! Self-stabilising Byzantine synchronous counters — the core contribution
//! of *Towards Optimal Synchronous Counting* (Lenzen, Rybicki, Suomela;
//! PODC 2015).
//!
//! A synchronous `c`-counter on `n` nodes with resilience `f` guarantees
//! that from **any** initial configuration, and despite `f` Byzantine nodes,
//! all correct nodes eventually output a common value that increments modulo
//! `c` every round. This crate implements:
//!
//! * [`Algorithm::trivial`] — the 0-resilient one-node counter, the base of
//!   all recursions (§4.1).
//! * [`Algorithm::lut`] — table-driven small counters, the form in which
//!   computer-designed algorithms ([4, 5] of the paper) are expressed; the
//!   `sc-verifier` crate checks and synthesises these.
//! * [`BoostedCounter`] — **Theorem 1**, the resilience-boosting
//!   construction: `k` blocks of an `(n, f)` counter yield an
//!   `(N = kn, F < (f+1)⌈k/2⌉)` counter for any counter size `C > 1`, with
//!   `T(B) ≤ T(A) + 3(F+2)(2m)^k` and `S(B) = S(A) + ⌈log(C+1)⌉ + 1`.
//! * [`CounterBuilder`] — the recursive schedules: Corollary 1 (optimal
//!   resilience `f < n/3`), Theorem 2 (fixed number of blocks), Theorem 3
//!   (varying number of blocks, resilience `n^{1−o(1)}`, time `O(f)`, space
//!   `O(log² f / log log f)`).
//! * [`adversaries`] — counter-structure-aware Byzantine strategies (king
//!   impersonation, leader-pointer splitting) used to stress the
//!   construction where it is most sensitive.
//!
//! # Example
//!
//! Build the paper's Figure 2 stack — `A(4,1) → A(12,3) → A(36,7)` — and
//! inspect its guarantees:
//!
//! ```
//! use sc_core::CounterBuilder;
//! use sc_protocol::{Counter, SyncProtocol};
//!
//! let a36 = CounterBuilder::corollary1(1, 2)? // A(4,1): 4 single-node blocks
//!     .boost(3)? // k = 3 blocks of A(4,1)  ->  A(12,3)
//!     .boost(3)? // k = 3 blocks of A(12,3) ->  A(36,7)
//!     .build()?;
//! assert_eq!(a36.n(), 36);
//! assert_eq!(a36.resilience(), 7);
//! assert_eq!(a36.modulus(), 2);
//! // Linear-in-f stabilisation bound and logarithmic state (Theorems 2-3).
//! println!("T = {}, S = {} bits", a36.stabilization_bound(), a36.state_bits());
//! # Ok::<(), sc_protocol::ParamError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversaries;
mod algorithm;
mod boosted;
mod dag;
mod lower;
mod lut;
mod params;
mod prepared;
mod recursion;
mod trivial;

pub use algorithm::{Algorithm, CounterState};
pub use boosted::{BoostedCounter, BoostedState, VoteObservation};
pub use dag::{Builder, NodeRef};
pub use lower::SlicedAlgorithm;
pub use lut::{LutCounter, LutSpec};
pub use params::{BoostParams, Pointer};
pub use prepared::{BoostedPrep, RoundPrep};
pub use recursion::{CounterBuilder, LevelPlan};
pub use trivial::TrivialCounter;
