//! The trivial one-node counter (§4.1).

use sc_protocol::{bits_for, ParamError};

/// The trivial synchronous `c`-counter for `n = 1`, `f = 0`: a single node
/// incrementing its own value modulo `c` every round.
///
/// It stabilises in 0 rounds — whatever the initial value, the output counts
/// correctly from round 0 — and uses `⌈log₂ c⌉` bits. Corollary 1 bootstraps
/// the whole recursive construction from this counter.
///
/// # Example
///
/// ```
/// use sc_core::TrivialCounter;
///
/// let t = TrivialCounter::new(2304)?;
/// assert_eq!(t.modulus(), 2304);
/// assert_eq!(t.next(2303), 0);
/// # Ok::<(), sc_protocol::ParamError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrivialCounter {
    c: u64,
}

impl TrivialCounter {
    /// A one-node counter modulo `c`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when `c < 2`.
    pub fn new(c: u64) -> Result<Self, ParamError> {
        if c < 2 {
            return Err(ParamError::constraint(format!(
                "counter modulus must be ≥ 2, got {c}"
            )));
        }
        Ok(TrivialCounter { c })
    }

    /// The modulus `c`.
    pub fn modulus(&self) -> u64 {
        self.c
    }

    /// The transition function: `value + 1 mod c`.
    ///
    /// Out-of-range inputs (possible only for adversarially fabricated
    /// states) are first reduced modulo `c`.
    pub fn next(&self, value: u64) -> u64 {
        (value % self.c + 1) % self.c
    }

    /// Space `S(A) = ⌈log₂ c⌉` bits.
    pub fn state_bits(&self) -> u32 {
        bits_for(self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_wraps() {
        let t = TrivialCounter::new(3).unwrap();
        assert_eq!(t.next(0), 1);
        assert_eq!(t.next(2), 0);
        // Defensive reduction of fabricated out-of-range states.
        assert_eq!(t.next(7), 2);
    }

    #[test]
    fn space_matches_the_paper() {
        assert_eq!(TrivialCounter::new(2304).unwrap().state_bits(), 12);
        assert_eq!(TrivialCounter::new(2).unwrap().state_bits(), 1);
    }

    #[test]
    fn rejects_degenerate_moduli() {
        assert!(TrivialCounter::new(0).is_err());
        assert!(TrivialCounter::new(1).is_err());
    }
}
