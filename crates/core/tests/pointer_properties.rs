//! Property-based tests on the `(r, y, b)` decomposition and the parameter
//! algebra of the boosting construction — Lemmas 1–2 as pure arithmetic.

use proptest::prelude::*;
use sc_core::{BoostParams, CounterBuilder};
use sc_protocol::Counter as _;

fn params_strategy() -> impl Strategy<Value = BoostParams> {
    // Blocks of single nodes (Corollary 1 topology) with k ∈ 4..8 (F = 1
    // needs N = k > 3F) and a handful of king-slack choices.
    (4usize..8, 0u64..2)
        .prop_map(|(k, slack)| BoostParams::new(1, 0, k, 1, 8, slack).expect("valid parameters"))
}

proptest! {
    /// After stabilisation the slot counter r increments by 1 (mod τ) when
    /// the underlying counter increments, for every block.
    #[test]
    fn slot_counter_increments_with_the_counter(
        p in params_strategy(),
        v in 0u64..100_000,
    ) {
        for block in 0..p.k() {
            let now = p.pointer(block, v);
            let next = p.pointer(block, v + 1);
            prop_assert_eq!(next.r, (now.r + 1) % p.tau());
        }
    }

    /// The pointer b is constant within each dwell segment of length
    /// τ·(2m)^i and cycles through [m] (Lemma 1's structure).
    #[test]
    fn pointer_dwell_structure(p in params_strategy(), segment in 0u64..32) {
        for block in 0..p.k() {
            let dwell = p.tau() * (2 * p.m() as u64).pow(block as u32);
            let start = segment * dwell;
            let b0 = p.pointer(block, start).b;
            prop_assert!(b0 < p.m());
            // Constant throughout the segment (sample a few offsets).
            for off in [1u64, dwell / 2, dwell - 1] {
                prop_assert_eq!(p.pointer(block, start + off).b, b0);
            }
            // Adjacent segments differ by exactly the [2m]→[m] wheel step.
            let b1 = p.pointer(block, start + dwell).b;
            prop_assert_eq!(b1, ((start / dwell + 1) % (2 * p.m() as u64) % p.m() as u64) as usize);
        }
    }

    /// The value decomposes exactly as v mod c_i = r + τ·y.
    #[test]
    fn decomposition_is_exact(p in params_strategy(), v in any::<u64>()) {
        for block in 0..p.k() {
            let ptr = p.pointer(block, v);
            prop_assert_eq!(ptr.r + p.tau() * ptr.y, v % p.block_modulus(block));
            prop_assert!(ptr.y < (2 * p.m() as u64).pow(block as u32 + 1));
        }
    }

    /// Theorem 1 cost recurrences as properties of the builder.
    #[test]
    fn builder_respects_cost_recurrences(k in 3usize..5, c in 2u64..64) {
        let one = CounterBuilder::corollary1(1, c).unwrap().build().unwrap();
        let builder = CounterBuilder::corollary1(1, c).unwrap().boost(k).unwrap();
        let two = builder.build().unwrap();
        let plan = builder.plan().unwrap();
        let top = plan.last().unwrap();
        // S(B) = S(A) + ⌈log(C+1)⌉ + 1, with A's modulus rewired to c_req.
        prop_assert_eq!(
            two.state_bits(),
            plan[plan.len() - 2].state_bits + sc_protocol::bits_for(c + 1) + 1
        );
        // T(B) = T(A) + 3(F+2)(2m)^k.
        let m = k.div_ceil(2) as u64;
        let overhead = 3 * (top.f as u64 + 2) * (2 * m).pow(k as u32);
        prop_assert_eq!(two.stabilization_bound(), one.stabilization_bound() + overhead);
    }
}
