//! End-to-end stabilisation of the Theorem 1 construction.
//!
//! Self-stabilisation is quantified over all initial configurations and all
//! adversaries; these tests sample that space aggressively (every fault
//! placement × several strategies × several seeds) and assert the *proven*
//! bound `T(B) ≤ T(A) + 3(F+2)(2m)^k` on every single run. A fabricated
//! non-counter is also checked to *fail*, guarding against a vacuous
//! detector.

use sc_core::{adversaries as core_adv, Algorithm, CounterBuilder};
use sc_protocol::Counter;
use sc_sim::{adversaries, Adversary, Simulation};

/// A(4, 1, 8): Corollary 1 with f = 1.
fn a4() -> Algorithm {
    CounterBuilder::corollary1(1, 8).unwrap().build().unwrap()
}

fn assert_stabilizes<A>(algo: &Algorithm, adv: A, seed: u64, label: &str)
where
    A: Adversary<sc_core::CounterState>,
{
    let bound = algo.stabilization_bound();
    let mut sim = Simulation::new(algo, adv, seed);
    let report = sim
        .run_until_stable(bound + 64)
        .unwrap_or_else(|e| panic!("{label} (seed {seed}): {e}"));
    assert!(
        report.stabilization_round <= bound,
        "{label} (seed {seed}): stabilised at {} > bound {bound}",
        report.stabilization_round
    );
}

#[test]
fn a4_stabilizes_fault_free() {
    let algo = a4();
    for seed in 0..5 {
        assert_stabilizes(&algo, adversaries::none(), seed, "A(4,1) fault-free");
    }
}

#[test]
fn a4_stabilizes_under_every_fault_position_and_strategy() {
    let algo = a4();
    for faulty in 0..4usize {
        for seed in [1u64, 77] {
            assert_stabilizes(
                &algo,
                adversaries::crash(&algo, [faulty], seed),
                seed,
                "A(4,1) crash",
            );
            assert_stabilizes(
                &algo,
                adversaries::random(&algo, [faulty], seed),
                seed,
                "A(4,1) random",
            );
            assert_stabilizes(
                &algo,
                adversaries::two_faced(&algo, [faulty], seed),
                seed,
                "A(4,1) two-faced",
            );
            assert_stabilizes(
                &algo,
                adversaries::replay([faulty], 3),
                seed,
                "A(4,1) replay",
            );
            assert_stabilizes(
                &algo,
                core_adv::bad_king(&algo, [faulty], seed),
                seed,
                "A(4,1) bad-king",
            );
            assert_stabilizes(
                &algo,
                core_adv::pointer_split(&algo, [faulty], seed),
                seed,
                "A(4,1) pointer-split",
            );
        }
    }
}

#[test]
fn a12_stabilizes_with_three_byzantine_nodes() {
    // A(12, 3): one boosting level over A(4, 1).
    let algo = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    assert_eq!(algo.resilience(), 3);
    // Worst placement: make one whole block faulty (4 > f = 1 would need 2;
    // we place 2 in block 0 to make it faulty, 1 spread).
    let placements: [&[usize]; 3] = [&[0, 1, 4], &[0, 5, 9], &[2, 6, 10]];
    for (i, faulty) in placements.iter().enumerate() {
        for seed in [3u64, 19] {
            assert_stabilizes(
                &algo,
                adversaries::random(&algo, faulty.iter().copied(), seed),
                seed,
                &format!("A(12,3) random placement {i}"),
            );
            assert_stabilizes(
                &algo,
                core_adv::bad_king(&algo, faulty.iter().copied(), seed),
                seed,
                &format!("A(12,3) bad-king placement {i}"),
            );
        }
    }
}

#[test]
fn agreement_persists_once_reached() {
    // Lemma 5, executable: run past stabilisation, then keep adversarially
    // stepping and verify counting never breaks again.
    let algo = a4();
    let adv = core_adv::bad_king(&algo, [2], 5);
    let mut sim = Simulation::new(&algo, adv, 11);
    sim.run_until_stable(algo.stabilization_bound() + 64)
        .unwrap();
    let trace = sim.run_trace(500);
    for r in 0..trace.len() - 1 {
        let now = trace
            .agreed_value(r)
            .expect("agreement lost after stabilisation");
        let next = trace
            .agreed_value(r + 1)
            .expect("agreement lost after stabilisation");
        assert_eq!(
            next,
            (now + 1) % algo.modulus(),
            "counting broke at offset {r}"
        );
    }
}

#[test]
fn deterministic_counter_ignores_protocol_rng() {
    let algo = a4();
    // Same initial states, different protocol seeds → identical executions.
    use rand::SeedableRng as _;
    let mut init_rng = rand::rngs::SmallRng::seed_from_u64(400);
    use sc_protocol::{NodeId, SyncProtocol as _};
    let states: Vec<_> = (0..4)
        .map(|i| algo.random_state(NodeId::new(i), &mut init_rng))
        .collect();
    let mut a =
        Simulation::with_states(&algo, adversaries::crash(&algo, [1], 9), states.clone(), 1);
    let mut b = Simulation::with_states(&algo, adversaries::crash(&algo, [1], 9), states, 2);
    a.run(300);
    b.run(300);
    assert_eq!(a.states(), b.states());
}

#[test]
fn broken_counter_is_caught_by_the_detector() {
    // A "counter" that freezes instead of incrementing must NOT pass
    // stabilisation detection — guards against a vacuous test harness.
    let algo = Algorithm::trivial(4).unwrap();
    // Trivial counter on one node; freeze it by replaying its own state via
    // an explicit non-incrementing protocol is not expressible here, so
    // instead check the detector directly on a frozen trace.
    use sc_protocol::NodeId;
    use sc_sim::{detect_stabilization, OutputTrace};
    let mut trace = OutputTrace::new(vec![NodeId::new(0)]);
    for _ in 0..50 {
        trace.push_row(vec![2]);
    }
    assert!(detect_stabilization(&trace, algo.modulus(), 8).is_err());
}

#[test]
fn recovers_from_transient_corruption_bursts() {
    // The self-stabilisation promise in full: stabilise, corrupt every
    // register in the system, re-stabilise within the bound — repeatedly,
    // with a live Byzantine node throughout.
    let algo = a4();
    let adv = adversaries::two_faced(&algo, [3], 13);
    let mut sim = Simulation::new(&algo, adv, 13);
    sim.run_until_stable(algo.stabilization_bound() + 64)
        .unwrap();
    for burst in 0..3u64 {
        sim.corrupt_all(500 + burst);
        let report = sim
            .run_until_stable(algo.stabilization_bound() + 64)
            .unwrap_or_else(|e| panic!("burst {burst}: {e}"));
        assert!(
            report.stabilization_round <= algo.stabilization_bound(),
            "burst {burst}: {} > bound",
            report.stabilization_round
        );
    }
}

#[test]
fn partial_corruption_of_one_block_recovers() {
    let algo = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    let adv = adversaries::random(&algo, [5], 4);
    let mut sim = Simulation::new(&algo, adv, 4);
    sim.run_until_stable(algo.stabilization_bound() + 64)
        .unwrap();
    // Wipe block 0 (nodes 0..4) — fewer than a majority of blocks.
    use sc_protocol::NodeId;
    sim.corrupt((0..4).map(NodeId::new), 77);
    let report = sim
        .run_until_stable(algo.stabilization_bound() + 64)
        .unwrap();
    assert!(report.stabilization_round <= algo.stabilization_bound());
}

#[test]
fn sleeper_attack_cannot_break_agreement_after_onset() {
    // The strongest Lemma 5 stress: faults behave honestly until well past
    // stabilisation, then switch to king equivocation. Counting must
    // continue uninterrupted through the onset.
    let algo = a4();
    let wake = 120u64;
    let attack = core_adv::bad_king(&algo, [2], 21);
    let adv = sc_sim::sleeper(&algo, [2], wake, attack, 21);
    let mut sim = Simulation::new(&algo, adv, 33);
    sim.run(wake); // stabilised long ago (fault-free behaviour)
    let trace = sim.run_trace(400);
    for r in 0..trace.len() - 1 {
        let now = trace
            .agreed_value(r)
            .expect("agreement lost after attack onset");
        let next = trace
            .agreed_value(r + 1)
            .expect("agreement lost after attack onset");
        assert_eq!(
            next,
            (now + 1) % algo.modulus(),
            "counting broke at offset {r}"
        );
    }
}

#[test]
fn greedy_lookahead_stays_within_the_bound() {
    // The greedy one-step-lookahead adversary uses the transition function
    // itself; the proven bound must still hold.
    let algo = a4();
    for seed in [2u64, 15] {
        let adv = sc_sim::greedy(&algo, [0], 6, seed);
        let mut sim = Simulation::new(&algo, adv, seed);
        let report = sim
            .run_until_stable(algo.stabilization_bound() + 64)
            .unwrap_or_else(|e| panic!("greedy seed {seed}: {e}"));
        assert!(report.stabilization_round <= algo.stabilization_bound());
    }
}
