//! Property coverage for the bit-sliced engine on the paper's counter
//! stacks: `SlicedBatch` verdicts equal `Batch` verdicts seed for seed,
//! across the adversary library (crash / replay / two-faced equivocation),
//! random fault sets, and ragged scenario counts straddling the 64-lane
//! word boundary.
//!
//! The deterministic per-bit program checks live in `sc-core`'s `lower`
//! unit tests; these properties stress the *end-to-end* contract the attack
//! objective relies on.

use proptest::{prop_assert_eq, proptest, ProptestConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_core::{Algorithm, CounterBuilder, CounterState};
use sc_sim::{
    adversaries, sliced_crash, sliced_replay, sliced_two_faced_periodic, two_faced_periodic, Batch,
    BatchReport, Scenario, SlicedBatch,
};

fn verdicts(report: &BatchReport) -> Vec<(u64, String)> {
    report
        .outcomes
        .iter()
        .map(|o| (o.seed, format!("{:?}", o.result)))
        .collect()
}

fn a4() -> Algorithm {
    CounterBuilder::corollary1(1, 8).unwrap().build().unwrap()
}

fn a12() -> Algorithm {
    CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// A(4,1): every library adversary, random single fault, random ragged
    /// scenario count (1..=70 spans the word boundary), verdict-identical
    /// engines.
    #[test]
    fn a4_library_adversaries_verdict_identical(seed in proptest::any::<u64>()) {
        let algo = a4();
        let mut rng = SmallRng::seed_from_u64(seed);
        let fault = rng.random_range(0..4usize);
        let count = rng.random_range(1..=70u64);
        let first = rng.random_range(0..1000u64);
        let scenarios = Scenario::seeds(first..first + count);
        let seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
        let horizon = 260;

        let scalar = Batch::new(&algo, horizon);
        let sliced = SlicedBatch::new(&algo, horizon).lane_words(1);
        match rng.random_range(0..3u8) {
            0 => {
                let a = scalar.run(&scenarios, |s: &Scenario<CounterState>| {
                    adversaries::crash(&algo, [fault], s.seed)
                });
                let b = sliced
                    .run(&scenarios, &sliced_crash(&algo, [fault], &seeds))
                    .expect("A(4,1) lowers");
                prop_assert_eq!(verdicts(&a), verdicts(&b), "crash fault {}", fault);
            }
            1 => {
                let delay = rng.random_range(1..=3usize);
                let a = scalar.run(&scenarios, |_| {
                    adversaries::replay::<CounterState>([fault], delay)
                });
                let b = sliced
                    .run(&scenarios, &sliced_replay(4, [fault], delay))
                    .expect("A(4,1) lowers");
                prop_assert_eq!(verdicts(&a), verdicts(&b), "replay lag {}", delay);
            }
            _ => {
                let period = rng.random_range(1..=4usize);
                let a = scalar.run(&scenarios, |s: &Scenario<CounterState>| {
                    two_faced_periodic([fault], s.seed, period)
                });
                let b = sliced
                    .run(
                        &scenarios,
                        &sliced_two_faced_periodic(4, [fault], &seeds, period),
                    )
                    .expect("A(4,1) lowers");
                prop_assert_eq!(verdicts(&a), verdicts(&b), "two-faced period {}", period);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// A(12,3): random fault sets up to full resilience, crash and
    /// two-faced, ragged counts.
    #[test]
    fn a12_random_fault_sets_verdict_identical(seed in proptest::any::<u64>()) {
        let algo = a12();
        let mut rng = SmallRng::seed_from_u64(seed);
        let f = rng.random_range(1..=3usize);
        let mut faults: Vec<usize> = (0..12).collect();
        faults.rotate_left(rng.random_range(0..12));
        faults.truncate(f);
        faults.sort_unstable();
        let count = rng.random_range(1..=40u64);
        let scenarios = Scenario::seeds(0..count);
        let seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
        let horizon = 120;

        let scalar = Batch::new(&algo, horizon);
        let sliced = SlicedBatch::new(&algo, horizon).lane_words(1);
        if rng.random_range(0..2u8) == 0 {
            let a = scalar.run(&scenarios, |s: &Scenario<CounterState>| {
                adversaries::crash(&algo, faults.iter().copied(), s.seed)
            });
            let b = sliced
                .run(&scenarios, &sliced_crash(&algo, faults.iter().copied(), &seeds))
                .expect("A(12,3) lowers");
            prop_assert_eq!(verdicts(&a), verdicts(&b), "crash {:?}", faults);
        } else {
            let a = scalar.run(&scenarios, |s: &Scenario<CounterState>| {
                two_faced_periodic(faults.iter().copied(), s.seed, 2)
            });
            let b = sliced
                .run(
                    &scenarios,
                    &sliced_two_faced_periodic(12, faults.iter().copied(), &seeds, 2),
                )
                .expect("A(12,3) lowers");
            prop_assert_eq!(verdicts(&a), verdicts(&b), "two-faced {:?}", faults);
        }
    }
}

/// A(36,7) smoke: the full Figure 2 stack, seven crashed nodes, verdicts
/// identical over a ragged sweep (the horizon is short of stabilisation —
/// the engines must agree on the `NotStabilized` verdicts too).
#[test]
fn a36_crash_verdict_identical() {
    let algo = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    let faults = [0usize, 5, 11, 17, 23, 29, 35];
    let scenarios = Scenario::seeds(0..9);
    let seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
    let horizon = 60;
    let a = Batch::new(&algo, horizon).run(&scenarios, |s: &Scenario<CounterState>| {
        adversaries::crash(&algo, faults, s.seed)
    });
    let b = SlicedBatch::new(&algo, horizon)
        .lane_words(1)
        .run(&scenarios, &sliced_crash(&algo, faults, &seeds))
        .expect("A(36,7) lowers");
    assert_eq!(verdicts(&a), verdicts(&b));
}
