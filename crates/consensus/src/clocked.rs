//! The counting → consensus reduction.

use rand::RngCore;
use sc_protocol::{Counter, MessageView, NodeId, ParamError, StepContext, SyncProtocol, Tally};

use crate::instructions::{execute_slot, IncrementMode, PhaseKingParams};
use crate::registers::PkRegisters;

/// Self-stabilising *repeated* consensus clocked by a synchronous counter.
///
/// §1 of the paper notes that counting and consensus are interreducible:
/// "given a synchronous counting algorithm one can design a binary consensus
/// algorithm and vice versa". This type is the forward direction: once the
/// underlying counter has stabilised, its output (mod `3(F+1)`) gives every
/// correct node a common slot number, which drives one phase-king execution
/// per counter cycle. Every cycle then satisfies agreement and validity on
/// the (fixed) inputs — i.e. self-stabilising repeated consensus.
///
/// A cycle spans `3(F+2)` slots: slot 0 *loads* the node's input into the
/// registers (it cannot also execute instructions, because the values
/// broadcast at slot 0 still belong to the previous cycle), which sacrifices
/// the first group's collect instruction; the remaining `F+1` complete king
/// groups guarantee one honest king, exactly the pigeonhole of §3.5. The
/// counter's modulus must be a multiple of `3(F+2)` so cycles align with the
/// counter period.
///
/// # Example
///
/// See `tests/` and `examples/tdma_mutex.rs`; unit tests below run the
/// reduction over a fault-free self-stabilising counter.
#[derive(Clone, Debug)]
pub struct ClockedConsensus<C> {
    counter: C,
    params: PhaseKingParams,
    inputs: Vec<u64>,
}

/// Per-node state of [`ClockedConsensus`]: the counter state plus the
/// phase-king registers.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ClockedState<S> {
    /// State of the underlying synchronous counter.
    pub counter: S,
    /// Registers of the in-flight phase-king execution.
    pub regs: PkRegisters,
}

impl<C: Counter> ClockedConsensus<C> {
    /// Wraps `counter` to run repeated `f`-resilient consensus on values in
    /// `[c]` with the given per-node `inputs`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `counter.n() > 3f`, `c > 1`,
    /// `inputs.len() == counter.n()` with all inputs in `[c]`, and
    /// `counter.modulus()` is a multiple of `3(f+2)`.
    pub fn new(counter: C, f: usize, c: u64, inputs: Vec<u64>) -> Result<Self, ParamError> {
        let params = PhaseKingParams::with_king_groups(counter.n(), f, c, f as u64 + 2)?;
        if !counter.modulus().is_multiple_of(params.slots()) {
            return Err(ParamError::constraint(format!(
                "counter modulus {} is not a multiple of 3(F+2) = {}",
                counter.modulus(),
                params.slots()
            )));
        }
        if inputs.len() != counter.n() {
            return Err(ParamError::constraint(format!(
                "{} inputs for {} nodes",
                inputs.len(),
                counter.n()
            )));
        }
        if let Some(bad) = inputs.iter().find(|&&x| x >= c) {
            return Err(ParamError::constraint(format!("input {bad} outside [{c}]")));
        }
        Ok(ClockedConsensus {
            counter,
            params,
            inputs,
        })
    }

    /// The underlying counter.
    pub fn counter(&self) -> &C {
        &self.counter
    }

    /// Slots per consensus cycle, `3(F+2)`.
    pub fn slots(&self) -> u64 {
        self.params.slots()
    }

    /// The slot a node occupies in `state` (meaningful after the counter has
    /// stabilised, when it is common to all correct nodes).
    pub fn slot(&self, node: NodeId, state: &ClockedState<C::State>) -> u64 {
        self.counter.output(node, &state.counter) % self.params.slots()
    }

    /// The decision of the cycle that just completed, available exactly when
    /// the node sits at slot 0 (before its registers are reloaded).
    pub fn decision(&self, node: NodeId, state: &ClockedState<C::State>) -> Option<u64> {
        (self.slot(node, state) == 0).then(|| state.regs.output(self.params.c()))
    }
}

impl<C: Counter> SyncProtocol for ClockedConsensus<C> {
    type State = ClockedState<C::State>;

    fn n(&self) -> usize {
        self.counter.n()
    }

    fn step(
        &self,
        node: NodeId,
        view: &MessageView<'_, Self::State>,
        ctx: &mut StepContext<'_>,
    ) -> Self::State {
        // 1. Advance the underlying counter on the received counter states.
        let inner: Vec<C::State> = view.iter().map(|s| s.counter.clone()).collect();
        let inner_view = MessageView::new(&inner, &[]);
        let next_counter = self.counter.step(node, &inner_view, ctx);

        // 2. Determine this round's slot from the *start-of-round* output.
        let slot = self.slot(node, view.get(node));

        // 3. Slot 0 loads the input (the broadcast values still belong to
        //    the previous cycle, so no instruction can use them); all other
        //    slots execute their Table 2 instruction set.
        let regs = if slot == 0 {
            PkRegisters::new(self.inputs[node.index()], true)
        } else {
            let tally: Tally = view.iter().map(|s| s.regs.a).collect();
            let king = self.params.king_of_group(slot / 3);
            let king_value = view.get(king).regs.a;
            execute_slot(
                &self.params,
                view.get(node).regs,
                slot,
                &tally,
                king_value,
                IncrementMode::OneShot,
            )
        };

        ClockedState {
            counter: next_counter,
            regs,
        }
    }

    fn output(&self, _node: NodeId, state: &Self::State) -> u64 {
        state.regs.output(self.params.c())
    }

    fn random_state(&self, node: NodeId, rng: &mut dyn RngCore) -> Self::State {
        let counter = self.counter.random_state(node, rng);
        let pk = crate::PhaseKing::new(self.params.n(), self.params.f(), self.params.c())
            .expect("parameters already validated");
        let regs = pk.random_state(node, rng).regs;
        ClockedState { counter, regs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_protocol::{BitReader, BitVec, CodecError};
    use sc_sim::{adversaries, Simulation};

    /// Fault-free self-stabilising counter: adopt `max + 1 mod c`.
    #[derive(Clone, Debug)]
    struct FollowMax {
        n: usize,
        c: u64,
    }

    impl SyncProtocol for FollowMax {
        type State = u64;
        fn n(&self) -> usize {
            self.n
        }
        fn step(&self, _: NodeId, view: &MessageView<'_, u64>, _: &mut StepContext<'_>) -> u64 {
            (view.iter().max().copied().unwrap() + 1) % self.c
        }
        fn output(&self, _: NodeId, s: &u64) -> u64 {
            *s
        }
        fn random_state(&self, _: NodeId, rng: &mut dyn RngCore) -> u64 {
            rng.next_u64() % self.c
        }
    }

    impl Counter for FollowMax {
        fn modulus(&self) -> u64 {
            self.c
        }
        fn resilience(&self) -> usize {
            0
        }
        fn state_bits(&self) -> u32 {
            sc_protocol::bits_for(self.c)
        }
        fn stabilization_bound(&self) -> u64 {
            1
        }
        fn encode_state(&self, _: NodeId, s: &u64, out: &mut BitVec) {
            out.push_bits(*s, self.state_bits());
        }
        fn decode_state(&self, _: NodeId, r: &mut BitReader<'_>) -> Result<u64, CodecError> {
            r.read_bits(self.state_bits())
        }
    }

    #[test]
    fn repeated_consensus_after_stabilisation() {
        let counter = FollowMax { n: 4, c: 6 };
        let inputs = vec![1, 1, 1, 1];
        let cc = ClockedConsensus::new(counter, 0, 2, inputs).unwrap();
        let mut sim = Simulation::new(&cc, adversaries::none(), 5);
        sim.run(8); // well past the counter's stabilisation
                    // Walk two full cycles; at every slot-0 state the decision must be
                    // the (unanimous) input 1.
        let mut decisions = 0;
        for _ in 0..2 * cc.slots() {
            sim.step();
            for &v in sim.honest() {
                if let Some(d) = cc.decision(v, &sim.states()[v.index()]) {
                    assert_eq!(d, 1);
                    decisions += 1;
                }
            }
        }
        assert!(
            decisions >= 4,
            "expected at least one full cycle of decisions"
        );
    }

    #[test]
    fn mixed_inputs_yield_agreement_each_cycle() {
        let counter = FollowMax { n: 4, c: 12 };
        let cc = ClockedConsensus::new(counter, 0, 4, vec![3, 0, 3, 2]).unwrap();
        let mut sim = Simulation::new(&cc, adversaries::none(), 9);
        sim.run(13);
        for _ in 0..cc.slots() * 2 {
            sim.step();
            let per_round: Vec<u64> = sim
                .honest()
                .iter()
                .filter_map(|&v| cc.decision(v, &sim.states()[v.index()]))
                .collect();
            assert!(per_round.windows(2).all(|w| w[0] == w[1]), "{per_round:?}");
        }
    }

    #[test]
    fn constructor_validates_modulus_and_inputs() {
        let mk = || FollowMax { n: 4, c: 7 };
        assert!(ClockedConsensus::new(mk(), 0, 2, vec![0; 4]).is_err()); // 7 % 6 != 0
        let mk6 = || FollowMax { n: 4, c: 6 };
        assert!(ClockedConsensus::new(mk6(), 0, 2, vec![0; 3]).is_err()); // wrong arity
        assert!(ClockedConsensus::new(mk6(), 0, 2, vec![0, 0, 2, 0]).is_err()); // input ≥ c
        assert!(ClockedConsensus::new(mk6(), 0, 2, vec![0; 4]).is_ok());
    }
}
