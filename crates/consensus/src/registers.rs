//! The phase-king register pair `(a, d)`.

use sc_protocol::{BitReader, BitVec, CodecError};

/// The reset state `∞` of the output register `a`.
///
/// `∞` sorts above every counter value, so `min{C, a[ℓ]}` and
/// `min{j : z_j > F}` work out with plain `u64` comparisons.
pub const INFINITY: u64 = u64::MAX;

/// Registers of the phase-king protocol at one node: the output register
/// `a ∈ [C] ∪ {∞}` and the auxiliary flag `d` (Table 2).
///
/// # Example
///
/// ```
/// use sc_consensus::{PkRegisters, INFINITY};
///
/// let mut r = PkRegisters::new(6, true);
/// r.increment(7);
/// assert_eq!(r.a, 0); // wrapped modulo C = 7
/// let mut frozen = PkRegisters::reset();
/// frozen.increment(7);
/// assert_eq!(frozen.a, INFINITY); // increment is a no-op on ∞
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PkRegisters {
    /// Output register `a[v] ∈ [C] ∪ {∞}` (with `∞ = u64::MAX`).
    pub a: u64,
    /// Auxiliary register `d[v] ∈ {0, 1}`.
    pub d: bool,
}

impl PkRegisters {
    /// Registers holding value `a` with flag `d`.
    pub fn new(a: u64, d: bool) -> Self {
        PkRegisters { a, d }
    }

    /// Registers in the reset state `(∞, 0)`.
    pub fn reset() -> Self {
        PkRegisters {
            a: INFINITY,
            d: false,
        }
    }

    /// The paper's `increment a[v]`: adds one modulo `c` unless `a = ∞`.
    pub fn increment(&mut self, c: u64) {
        if self.a != INFINITY {
            self.a = (self.a + 1) % c;
        }
    }

    /// The counter value this register represents, mapping non-values
    /// (`∞`, or the transient cap `C`) to 0 so that agreeing registers
    /// always yield agreeing outputs.
    pub fn output(&self, c: u64) -> u64 {
        if self.a >= c {
            0
        } else {
            self.a
        }
    }

    /// Encodes the pair into `⌈log₂(C+1)⌉ + 1` bits: `a` with `∞ ↦ C`,
    /// then `d`. This is exactly the space charged by Theorem 1.
    pub fn encode(&self, c: u64, out: &mut BitVec) {
        let width = sc_protocol::bits_for(c + 1);
        let raw = if self.a == INFINITY { c } else { self.a };
        out.push_bits(raw, width);
        out.push_bit(self.d);
    }

    /// Decodes a pair written by [`PkRegisters::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the bit string is exhausted or the decoded
    /// register exceeds its domain `[C] ∪ {∞}`.
    pub fn decode(c: u64, input: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let width = sc_protocol::bits_for(c + 1);
        let raw = input.read_bits(width)?;
        if raw > c {
            return Err(CodecError::InvalidField {
                field: "phase-king register a",
                value: raw,
            });
        }
        let a = if raw == c { INFINITY } else { raw };
        let d = input.read_bit()?;
        Ok(PkRegisters { a, d })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_wraps_and_skips_infinity() {
        let mut r = PkRegisters::new(4, false);
        r.increment(5);
        assert_eq!(r.a, 0);
        let mut inf = PkRegisters::reset();
        inf.increment(5);
        assert_eq!(inf.a, INFINITY);
    }

    #[test]
    fn increment_normalises_the_transient_cap() {
        // After `a ← min{C, a[ℓ]}` the register may briefly hold C; the
        // subsequent increment must bring it back into [C].
        let mut r = PkRegisters::new(5, true);
        r.increment(5);
        assert_eq!(r.a, 1); // (5 + 1) mod 5, matching the paper's literal text
    }

    #[test]
    fn output_maps_non_values_to_zero() {
        assert_eq!(PkRegisters::new(3, true).output(8), 3);
        assert_eq!(PkRegisters::reset().output(8), 0);
        assert_eq!(PkRegisters::new(8, true).output(8), 0);
    }

    #[test]
    fn codec_round_trips_all_values() {
        let c = 11u64;
        for a in (0..c).chain([INFINITY]) {
            for d in [false, true] {
                let regs = PkRegisters::new(a, d);
                let mut bits = BitVec::new();
                regs.encode(c, &mut bits);
                assert_eq!(bits.len() as u32, sc_protocol::bits_for(c + 1) + 1);
                let decoded = PkRegisters::decode(c, &mut bits.reader()).unwrap();
                assert_eq!(decoded, regs);
            }
        }
    }

    #[test]
    fn decode_rejects_out_of_domain() {
        // Width for c = 5 is 3 bits; raw value 7 > c is invalid.
        let mut bits = BitVec::new();
        bits.push_bits(7, 3);
        bits.push_bit(false);
        let err = PkRegisters::decode(5, &mut bits.reader()).unwrap_err();
        assert!(matches!(err, CodecError::InvalidField { .. }));
    }
}
