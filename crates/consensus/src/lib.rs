//! Phase-king Byzantine consensus and its counting-adapted instruction sets.
//!
//! The resilience-boosting construction of *Towards Optimal Synchronous
//! Counting* controls "an execution of the well-known phase king protocol
//! [Berman, Garay, Perry; FOCS 1989]" with a self-stabilising round counter.
//! This crate provides that substrate in three layers:
//!
//! * [`PkRegisters`] / [`instructions`] — the exact instruction sets
//!   `I_{3ℓ}`, `I_{3ℓ+1}`, `I_{3ℓ+2}` of **Table 2**, as pure functions over
//!   a received-value [`Tally`](sc_protocol::Tally). Two modes:
//!   [`IncrementMode::Counting`] (the paper's self-stabilising variant where
//!   the register is incremented modulo `C` after every slot) and
//!   [`IncrementMode::OneShot`] (classic consensus, no increments).
//! * [`PhaseKing`] — classic one-shot multivalued consensus for `N > 3F`,
//!   run as an ordinary protocol on the simulator. Lemmas 4–5 of the paper
//!   are the agreement/persistence arguments for these instruction sets and
//!   are property-tested here.
//! * [`ClockedConsensus`] — the counting→consensus reduction sketched in §1:
//!   any self-stabilising counter clocks repeated phase-king executions,
//!   yielding self-stabilising repeated consensus.
//!
//! # Example
//!
//! One-shot consensus among 4 nodes, one Byzantine, on inputs in `[8]`:
//!
//! ```
//! use sc_consensus::{decide, PhaseKing};
//! use sc_sim::adversaries;
//!
//! let pk = PhaseKing::new(4, 1, 8).unwrap();
//! let adv = adversaries::random(&pk, [2], 99);
//! let decisions = sc_consensus::run_consensus(&pk, &[3, 3, 0 /*faulty*/, 3], adv, 1);
//! // Validity: all correct inputs were 3, so the decision is 3.
//! assert_eq!(decisions, vec![3, 3, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clocked;
pub mod instructions;
mod one_shot;
mod registers;

pub use clocked::{ClockedConsensus, ClockedState};
pub use instructions::{IncrementMode, PhaseKingParams};
pub use one_shot::{decide, run_consensus, ConsensusState, PhaseKing};
pub use registers::{PkRegisters, INFINITY};
