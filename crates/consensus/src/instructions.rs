//! The instruction sets of Table 2.
//!
//! For `ℓ ∈ [F+2]` the paper defines three instruction sets executed in
//! consecutive rounds — with node `ℓ` acting as *king* in the third:
//!
//! ```text
//! I_{3ℓ}  : 1. if fewer than N−F nodes sent a[v], set a[v] ← ∞
//!           2. increment a[v]
//! I_{3ℓ+1}: 1. z_j := number of j values received
//!           2. if z_{a[v]} ≥ N−F set d[v] ← 1 else d[v] ← 0
//!           3. a[v] ← min{ j : z_j > F }
//!           4. increment a[v]
//! I_{3ℓ+2}: 1. if a[v] = ∞ or d[v] = 0, set a[v] ← min{C, a[ℓ]}
//!           2. d[v] ← 1; increment a[v]
//! ```
//!
//! The functions here are *pure*: they map the node's current registers and
//! the tally of received `a`-values to new registers, so the identical code
//! drives (a) the classic one-shot consensus (no increments), (b) the
//! self-stabilising counting variant inside the boosted counter of Theorem 1
//! (increments after every slot), and (c) the sampled thresholds of the
//! pulling model, which substitutes `⅔M` / `⅓M` for `N−F` / `F+1` (§5.3) via
//! [`PhaseKingParams::sampled`].

use sc_protocol::{ParamError, VoteCounts};

use crate::registers::{PkRegisters, INFINITY};

/// Whether the register is incremented after every instruction set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IncrementMode {
    /// The counting variant of §3.4: `increment a[v]` ends every slot, so an
    /// agreed register keeps counting modulo `C` forever (Lemma 5).
    Counting,
    /// Classic one-shot consensus: registers hold a value, no increments.
    OneShot,
}

/// Validated parameters of a phase-king execution.
///
/// # Example
///
/// ```
/// use sc_consensus::PhaseKingParams;
///
/// let p = PhaseKingParams::new(4, 1, 8)?;
/// assert_eq!(p.keep_threshold(), 3);   // N − F
/// assert_eq!(p.adopt_threshold(), 1);  // values must beat F
/// assert_eq!(p.slots(), 9);            // 3(F+2)
/// assert!(PhaseKingParams::new(3, 1, 8).is_err()); // needs N > 3F
/// # Ok::<(), sc_protocol::ParamError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseKingParams {
    n: usize,
    f: usize,
    c: u64,
    keep: usize,
    beat: usize,
    king_groups: u64,
}

impl PhaseKingParams {
    /// Parameters for `n` nodes, `f` faults, values modulo `c`, with the
    /// broadcast thresholds `N−F` and `F+1` and the paper-exact `F+2` king
    /// groups.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `n > 3f` and `c > 1`.
    pub fn new(n: usize, f: usize, c: u64) -> Result<Self, ParamError> {
        Self::with_king_groups(n, f, c, f as u64 + 2)
    }

    /// Like [`PhaseKingParams::new`] with an explicit number of king groups.
    ///
    /// One-shot consensus needs `F+1` groups (some king is then correct);
    /// the self-stabilising counting variant needs `F+2` because the
    /// stabilisation window may cut one group (§3.5), and the predictive
    /// pulling mode adds further `king_slack` groups (see DESIGN.md §2.5).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `n > 3f`, `c > 1`, `groups ≥ f+1` and
    /// `groups ≤ n` (every king must exist).
    pub fn with_king_groups(n: usize, f: usize, c: u64, groups: u64) -> Result<Self, ParamError> {
        if n <= 3 * f {
            return Err(ParamError::constraint(format!(
                "phase king requires N > 3F, got N = {n}, F = {f}"
            )));
        }
        if c < 2 {
            return Err(ParamError::constraint(format!(
                "counter size C > 1 required, got {c}"
            )));
        }
        if groups < f as u64 + 1 {
            return Err(ParamError::constraint(format!(
                "need at least F+1 = {} king groups, got {groups}",
                f + 1
            )));
        }
        if groups > n as u64 {
            return Err(ParamError::constraint(format!(
                "{groups} king groups need {groups} distinct kings but only {n} nodes exist"
            )));
        }
        Ok(PhaseKingParams {
            n,
            f,
            c,
            keep: n - f,
            beat: f,
            king_groups: groups,
        })
    }

    /// Sampled-threshold parameters for the pulling model (§5.3): a node
    /// draws `m` samples and replaces `N−F` by `⌈2m/3⌉` and the `> F` test
    /// by `> ⌊m/3⌋`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `n > 3f`, `c > 1` and `m ≥ 3`.
    pub fn sampled(n: usize, f: usize, c: u64, m: usize, groups: u64) -> Result<Self, ParamError> {
        let mut params = Self::with_king_groups(n, f, c, groups)?;
        if m < 3 {
            return Err(ParamError::constraint(format!(
                "sample size must be ≥ 3, got {m}"
            )));
        }
        params.keep = m.div_ceil(3) * 2;
        params.beat = m / 3;
        Ok(params)
    }

    /// Network size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Fault bound `F`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Counter size `C`.
    pub fn c(&self) -> u64 {
        self.c
    }

    /// Votes required to *keep* a value (`N−F`, or `⌈2m/3⌉` sampled).
    pub fn keep_threshold(&self) -> usize {
        self.keep
    }

    /// Vote count a value must *beat* to be adopted (`F`, or `⌊m/3⌋`).
    pub fn adopt_threshold(&self) -> usize {
        self.beat
    }

    /// Number of king groups (`F+2` unless slack was requested).
    pub fn king_groups(&self) -> u64 {
        self.king_groups
    }

    /// Total slots `τ = 3 · king_groups`; the self-stabilising round counter
    /// must count modulo a multiple of this.
    pub fn slots(&self) -> u64 {
        3 * self.king_groups
    }

    /// The king node of slot-group `ℓ` (node `ℓ` by convention).
    pub fn king_of_group(&self, group: u64) -> sc_protocol::NodeId {
        debug_assert!(group < self.king_groups);
        sc_protocol::NodeId::new(group as usize)
    }
}

/// Applies the instruction set selected by `slot ∈ [3·groups]` to one node.
///
/// * `regs` — the node's registers at the start of the round.
/// * `tally` — the multiset of `a`-values the node received this round
///   (including its own broadcast); any [`VoteCounts`] implementation
///   (a [`sc_protocol::Tally`], or the batch engine's patched
///   [`sc_protocol::DeltaTally`]) works identically.
/// * `king_value` — the `a`-value received *from the king of this slot's
///   group*; only read in the third slot of a group.
///
/// Returns the updated registers.
pub fn execute_slot<T: VoteCounts>(
    params: &PhaseKingParams,
    regs: PkRegisters,
    slot: u64,
    tally: &T,
    king_value: u64,
    mode: IncrementMode,
) -> PkRegisters {
    debug_assert!(slot < params.slots(), "slot {slot} out of range");
    let mut next = match slot % 3 {
        0 => collect(params, regs, tally),
        1 => propose(params, regs, tally),
        _ => king_adopt(params, regs, king_value),
    };
    if mode == IncrementMode::Counting {
        next.increment(params.c);
    }
    next
}

/// `I_{3ℓ}` without the increment: reset to `∞` unless the node's own value
/// has at least `N−F` support.
fn collect<T: VoteCounts>(
    params: &PhaseKingParams,
    mut regs: PkRegisters,
    tally: &T,
) -> PkRegisters {
    if tally.count(regs.a) < params.keep {
        regs.a = INFINITY;
    }
    regs
}

/// `I_{3ℓ+1}` without the increment: set `d` from the `N−F` test and adopt
/// `min{j : z_j > F}` (or `∞` when no value qualifies).
fn propose<T: VoteCounts>(
    params: &PhaseKingParams,
    mut regs: PkRegisters,
    tally: &T,
) -> PkRegisters {
    regs.d = tally.count(regs.a) >= params.keep;
    regs.a = tally
        .min_value_with_count_over(params.beat)
        .unwrap_or(INFINITY);
    regs
}

/// `I_{3ℓ+2}` without the increment: undecided nodes adopt the king's value
/// capped at `C`; everyone sets `d ← 1`.
fn king_adopt(params: &PhaseKingParams, mut regs: PkRegisters, king_value: u64) -> PkRegisters {
    if regs.a == INFINITY || !regs.d {
        regs.a = params.c.min(king_value);
    }
    regs.d = true;
    regs
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_protocol::Tally;

    fn params() -> PhaseKingParams {
        PhaseKingParams::new(7, 2, 10).unwrap()
    }

    fn tally_of(values: &[u64]) -> Tally {
        Tally::from_values(values.iter().copied())
    }

    #[test]
    fn collect_keeps_supported_values() {
        let p = params(); // keep threshold 5
        let t = tally_of(&[4, 4, 4, 4, 4, 9, 9]);
        let r = execute_slot(
            &p,
            PkRegisters::new(4, false),
            0,
            &t,
            0,
            IncrementMode::OneShot,
        );
        assert_eq!(r.a, 4);
    }

    #[test]
    fn collect_resets_unsupported_values() {
        let p = params();
        let t = tally_of(&[4, 4, 4, 4, 9, 9, 9]);
        let r = execute_slot(
            &p,
            PkRegisters::new(4, false),
            0,
            &t,
            0,
            IncrementMode::OneShot,
        );
        assert_eq!(r.a, INFINITY);
    }

    #[test]
    fn collect_in_counting_mode_increments() {
        let p = params();
        let t = tally_of(&[4, 4, 4, 4, 4, 9, 9]);
        let r = execute_slot(
            &p,
            PkRegisters::new(4, false),
            3,
            &t,
            0,
            IncrementMode::Counting,
        );
        assert_eq!(r.a, 5);
    }

    #[test]
    fn propose_sets_d_and_adopts_minimum_qualifier() {
        let p = params(); // beat threshold 2
        let t = tally_of(&[6, 6, 6, 2, 2, 2, 9]);
        // Own value 6 has support 3 < keep 5 so d = 0; min qualifying is 2.
        let r = execute_slot(
            &p,
            PkRegisters::new(6, true),
            1,
            &t,
            0,
            IncrementMode::OneShot,
        );
        assert!(!r.d);
        assert_eq!(r.a, 2);
    }

    #[test]
    fn propose_without_qualifier_resets() {
        let p = params();
        let t = tally_of(&[0, 1, 2, 3, 4, 5, 6]); // every count = 1 ≤ F = 2
        let r = execute_slot(
            &p,
            PkRegisters::new(0, true),
            1,
            &t,
            0,
            IncrementMode::OneShot,
        );
        assert_eq!(r.a, INFINITY);
        assert!(!r.d);
    }

    #[test]
    fn king_slot_overrides_undecided_nodes() {
        let p = params();
        let t = Tally::new();
        let undecided = PkRegisters::new(7, false);
        let r = execute_slot(&p, undecided, 2, &t, 3, IncrementMode::OneShot);
        assert_eq!(r.a, 3);
        assert!(r.d);
        // A decided node ignores the king.
        let decided = PkRegisters::new(7, true);
        let r = execute_slot(&p, decided, 2, &t, 3, IncrementMode::OneShot);
        assert_eq!(r.a, 7);
    }

    #[test]
    fn king_value_is_capped_at_c() {
        let p = params();
        let r = execute_slot(
            &p,
            PkRegisters::reset(),
            2,
            &Tally::new(),
            INFINITY,
            IncrementMode::OneShot,
        );
        assert_eq!(r.a, p.c());
        // In counting mode the subsequent increment renormalises into [C].
        let r = execute_slot(
            &p,
            PkRegisters::reset(),
            5,
            &Tally::new(),
            INFINITY,
            IncrementMode::Counting,
        );
        assert_eq!(r.a, (p.c() + 1) % p.c());
    }

    #[test]
    fn sampled_thresholds_follow_section_5() {
        let p = PhaseKingParams::sampled(100, 30, 4, 30, 32).unwrap();
        assert_eq!(p.keep_threshold(), 20); // 2/3 of 30
        assert_eq!(p.adopt_threshold(), 10); // 1/3 of 30
        assert!(PhaseKingParams::sampled(100, 30, 4, 2, 32).is_err());
    }

    #[test]
    fn parameter_validation() {
        assert!(PhaseKingParams::new(6, 2, 4).is_err()); // 6 ≤ 3·2
        assert!(PhaseKingParams::new(7, 2, 1).is_err()); // C too small
        assert!(PhaseKingParams::with_king_groups(7, 2, 4, 2).is_err()); // < F+1
        assert!(PhaseKingParams::with_king_groups(7, 2, 4, 8).is_err()); // > N kings
        let p = PhaseKingParams::with_king_groups(7, 2, 4, 5).unwrap();
        assert_eq!(p.slots(), 15);
        assert_eq!(p.king_of_group(4).index(), 4);
    }
}
