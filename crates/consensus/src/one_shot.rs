//! Classic one-shot phase-king consensus.

use rand::{Rng, RngCore};
use sc_protocol::{MessageView, NodeId, ParamError, StepContext, SyncProtocol, Tally};

use crate::instructions::{execute_slot, IncrementMode, PhaseKingParams};
use crate::registers::{PkRegisters, INFINITY};
use sc_sim::{Adversary, Simulation};

/// One-shot multivalued Byzantine consensus for `N > 3F` nodes
/// (Berman–Garay–Perry phase king, the protocol referenced as \[1\] by the
/// paper), expressed with the Table 2 instruction sets in
/// [`IncrementMode::OneShot`].
///
/// `F+1` king groups of three rounds each are executed; since at most `F`
/// nodes are faulty, at least one group has a correct king, which forces
/// agreement (Lemma 4 without increments); agreement then persists (Lemma 5
/// without increments). Validity holds because a value held by all correct
/// nodes always passes the `N−F` support test.
///
/// Unlike the counters in this workspace, consensus is **not**
/// self-stabilising: all correct nodes must start in round 0 with their
/// input loaded via [`PhaseKing::initial_state`].
///
/// See the crate-level documentation for an example.
#[derive(Clone, Debug)]
pub struct PhaseKing {
    params: PhaseKingParams,
}

/// Per-node state of [`PhaseKing`]: the synchronised round number and the
/// Table 2 registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConsensusState {
    /// Rounds executed so far (all correct nodes agree on this by
    /// construction — consensus starts synchronised).
    pub round: u64,
    /// The `(a, d)` register pair.
    pub regs: PkRegisters,
}

impl PhaseKing {
    /// Consensus among `n` nodes tolerating `f` faults on values in `[c]`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `n > 3f` and `c > 1`.
    pub fn new(n: usize, f: usize, c: u64) -> Result<Self, ParamError> {
        let params = PhaseKingParams::with_king_groups(n, f, c, f as u64 + 1)?;
        Ok(PhaseKing { params })
    }

    /// The validated parameters in use.
    pub fn params(&self) -> &PhaseKingParams {
        &self.params
    }

    /// Total number of rounds until every correct node has decided.
    pub fn rounds(&self) -> u64 {
        self.params.slots()
    }

    /// The starting state of a node with input `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside `[c]`.
    pub fn initial_state(&self, value: u64) -> ConsensusState {
        assert!(
            value < self.params.c(),
            "input {value} outside [{}]",
            self.params.c()
        );
        ConsensusState {
            round: 0,
            regs: PkRegisters::new(value, true),
        }
    }
}

impl SyncProtocol for PhaseKing {
    type State = ConsensusState;

    fn n(&self) -> usize {
        self.params.n()
    }

    fn step(
        &self,
        node: NodeId,
        view: &MessageView<'_, ConsensusState>,
        _ctx: &mut StepContext<'_>,
    ) -> ConsensusState {
        let me = *view.get(node);
        if me.round >= self.params.slots() {
            // Decided: the protocol has terminated, the state is frozen.
            return me;
        }
        let slot = me.round;
        let tally: Tally = view.iter().map(|s| s.regs.a).collect();
        let king = self.params.king_of_group(slot / 3);
        let king_value = view.get(king).regs.a;
        let regs = execute_slot(
            &self.params,
            me.regs,
            slot,
            &tally,
            king_value,
            IncrementMode::OneShot,
        );
        ConsensusState {
            round: me.round + 1,
            regs,
        }
    }

    fn output(&self, _node: NodeId, state: &ConsensusState) -> u64 {
        state.regs.output(self.params.c())
    }

    fn random_state(&self, _node: NodeId, rng: &mut dyn RngCore) -> ConsensusState {
        // Arbitrary representable state; used by adversaries to fabricate
        // plausible messages (the round field of *other* nodes is never read,
        // only their registers are).
        let c = self.params.c();
        let a = if rng.random_bool(0.2) {
            INFINITY
        } else {
            rng.random_range(0..c)
        };
        ConsensusState {
            round: rng.random_range(0..=self.params.slots()),
            regs: PkRegisters::new(a, rng.random_bool(0.5)),
        }
    }
}

/// The decision of a node, if it has terminated.
///
/// # Example
///
/// ```
/// use sc_consensus::{decide, PhaseKing};
///
/// let pk = PhaseKing::new(4, 1, 2)?;
/// let s = pk.initial_state(1);
/// assert_eq!(decide(&pk, &s), None); // round 0: still running
/// # Ok::<(), sc_protocol::ParamError>(())
/// ```
pub fn decide(pk: &PhaseKing, state: &ConsensusState) -> Option<u64> {
    (state.round >= pk.params.slots()).then(|| state.regs.output(pk.params.c()))
}

/// Runs one consensus instance to termination on a fresh simulation and
/// returns the decisions of the correct nodes (in increasing node order).
///
/// `inputs[v]` is node `v`'s input; entries of faulty nodes are ignored.
///
/// # Panics
///
/// Panics if `inputs.len() != pk.n()` or an input is outside `[c]`.
pub fn run_consensus<A>(pk: &PhaseKing, inputs: &[u64], adversary: A, seed: u64) -> Vec<u64>
where
    A: Adversary<ConsensusState>,
{
    assert_eq!(inputs.len(), pk.n(), "one input per node required");
    let faulty: Vec<NodeId> = adversary.faulty().to_vec();
    let states: Vec<ConsensusState> = inputs
        .iter()
        .enumerate()
        .map(|(v, &input)| {
            if faulty.binary_search(&NodeId::new(v)).is_ok() {
                // Placeholder; never read.
                ConsensusState {
                    round: 0,
                    regs: PkRegisters::reset(),
                }
            } else {
                pk.initial_state(input)
            }
        })
        .collect();
    let mut sim = Simulation::with_states(pk, adversary, states, seed);
    sim.run(pk.rounds());
    sim.honest()
        .iter()
        .map(|&v| decide(pk, &sim.states()[v.index()]).expect("protocol ran to termination"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_sim::adversaries;

    #[test]
    fn validity_with_unanimous_inputs() {
        let pk = PhaseKing::new(7, 2, 4).unwrap();
        let adv = adversaries::random(&pk, [1, 5], 3);
        let decisions = run_consensus(&pk, &[2, 0, 2, 2, 2, 0, 2], adv, 1);
        assert_eq!(decisions, vec![2; 5]);
    }

    #[test]
    fn agreement_with_mixed_inputs_under_equivocation() {
        let pk = PhaseKing::new(4, 1, 2).unwrap();
        for seed in 0..20 {
            let adv = adversaries::two_faced(&pk, [3], seed);
            let decisions = run_consensus(&pk, &[0, 1, 1, 0], adv, seed);
            assert!(
                decisions.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: {decisions:?}"
            );
        }
    }

    #[test]
    fn agreement_under_every_fault_position() {
        let pk = PhaseKing::new(4, 1, 8).unwrap();
        for faulty in 0..4usize {
            for seed in 0..10 {
                let adv = adversaries::random(&pk, [faulty], seed);
                let decisions = run_consensus(&pk, &[5, 1, 3, 7], adv, seed);
                assert!(
                    decisions.windows(2).all(|w| w[0] == w[1]),
                    "faulty {faulty} seed {seed}: {decisions:?}"
                );
            }
        }
    }

    #[test]
    fn fault_free_run_decides_on_a_common_input_value() {
        let pk = PhaseKing::new(4, 1, 4).unwrap();
        let decisions = run_consensus(&pk, &[3, 1, 1, 1], adversaries::none(), 0);
        assert!(decisions.windows(2).all(|w| w[0] == w[1]));
        // With a correct king and honest majority on 1, the decision is 1.
        assert_eq!(decisions[0], 1);
    }

    #[test]
    fn decided_state_is_frozen() {
        let pk = PhaseKing::new(4, 1, 2).unwrap();
        let adv = adversaries::none();
        let states: Vec<ConsensusState> = (0..4).map(|_| pk.initial_state(1)).collect();
        let mut sim = Simulation::with_states(&pk, adv, states, 0);
        sim.run(pk.rounds() + 10);
        for v in sim.honest() {
            assert_eq!(decide(&pk, &sim.states()[v.index()]), Some(1));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn oversized_input_panics() {
        let pk = PhaseKing::new(4, 1, 2).unwrap();
        let _ = pk.initial_state(2);
    }
}
