//! Lemmas 4 and 5 of the paper as executable properties.
//!
//! The proofs in §3.4 argue about one node's registers given the multiset
//! of values it received; we model exactly that: `N−F` correct values plus
//! `F` adversarially chosen values per node per round, with per-node
//! independence (every correct node gets its own Byzantine stuffing).

use proptest::prelude::*;
use sc_consensus::instructions::{execute_slot, IncrementMode};
use sc_consensus::{PhaseKingParams, PkRegisters, INFINITY};
use sc_protocol::Tally;

const C: u64 = 16;

fn reg_value() -> impl Strategy<Value = u64> {
    prop_oneof![4 => 0u64..C, 1 => Just(INFINITY)]
}

/// Runs the three slots of king group `ℓ` for all correct nodes, with
/// per-node Byzantine values chosen by proptest, in counting mode.
fn run_group(
    params: &PhaseKingParams,
    mut regs: Vec<PkRegisters>,
    group: u64,
    byz: &[Vec<u64>], // [round][node-specific values], cycled
    king_is_honest: bool,
    byz_king: u64,
) -> Vec<PkRegisters> {
    let n_honest = regs.len();
    let f = params.n() - n_honest;
    for phase in 0..3u64 {
        let slot = 3 * group + phase;
        let broadcast: Vec<u64> = regs.iter().map(|r| r.a).collect();
        let mut next = Vec::with_capacity(n_honest);
        for (i, reg) in regs.iter().enumerate() {
            let mut tally: Tally = broadcast.iter().copied().collect();
            for j in 0..f {
                let row = &byz[(phase as usize) % byz.len()];
                tally.add(row[(i + j) % row.len()]);
            }
            // King 0 is by convention the first correct node when honest;
            // otherwise the adversary picks the king value per receiver.
            let king_value = if king_is_honest {
                broadcast[0]
            } else {
                // Per-receiver equivocation on the king channel.
                byz[(phase as usize) % byz.len()][i % byz[0].len()].min(byz_king)
            };
            next.push(execute_slot(
                params,
                *reg,
                slot,
                &tally,
                king_value,
                IncrementMode::Counting,
            ));
        }
        regs = next;
    }
    regs
}

proptest! {
    /// Lemma 4: after a complete group with an honest king, all correct
    /// registers agree, are finite, and have d = 1 — from **any** starting
    /// registers and **any** Byzantine values.
    #[test]
    fn lemma4_honest_king_forces_agreement(
        start in proptest::collection::vec((reg_value(), any::<bool>()), 3),
        byz in proptest::collection::vec(proptest::collection::vec(reg_value(), 3), 3),
    ) {
        let params = PhaseKingParams::new(4, 1, C).unwrap();
        let regs: Vec<PkRegisters> =
            start.into_iter().map(|(a, d)| PkRegisters::new(a, d)).collect();
        let out = run_group(&params, regs, 0, &byz, true, 0);
        prop_assert!(out.iter().all(|r| r.d));
        prop_assert!(out.iter().all(|r| r.a != INFINITY));
        prop_assert!(out.windows(2).all(|w| w[0].a == w[1].a), "{out:?}");
    }

    /// Lemma 5: once agreement holds (common a, d = 1), it persists through
    /// any group — honest or Byzantine king — and the register counts.
    #[test]
    fn lemma5_agreement_persists_and_counts(
        x in 0u64..C,
        group in 0u64..3,
        byz in proptest::collection::vec(proptest::collection::vec(reg_value(), 3), 3),
        byz_king in reg_value(),
        king_is_honest in any::<bool>(),
    ) {
        let params = PhaseKingParams::new(4, 1, C).unwrap();
        let regs = vec![PkRegisters::new(x, true); 3];
        let out = run_group(&params, regs, group, &byz, king_is_honest, byz_king);
        let expect = (x + 3) % C; // three counting slots
        prop_assert!(out.iter().all(|r| r.a == expect && r.d), "{out:?}");
    }

    /// One-shot mode (no increments): the same persistence without drift,
    /// which is what `ClockedConsensus` relies on between cycles.
    #[test]
    fn one_shot_agreement_is_stationary(
        x in 0u64..C,
        slot in 0u64..6,
        stuffing in proptest::collection::vec(reg_value(), 1),
    ) {
        let params = PhaseKingParams::with_king_groups(4, 1, C, 2).unwrap();
        let mut tally: Tally = [x, x, x].into_iter().collect();
        tally.extend(stuffing.iter().copied());
        let next = execute_slot(
            &params,
            PkRegisters::new(x, true),
            slot,
            &tally,
            stuffing[0],
            IncrementMode::OneShot,
        );
        prop_assert_eq!(next.a, x);
        prop_assert!(next.d);
    }
}
