//! End-to-end behaviour of the pulling-model counters (§5, Theorem 4,
//! Corollaries 4–5), running on the **shared zero-copy engine**: every
//! execution here drives [`Pulled`] through `sc_sim::Simulation` / `Batch`
//! — the pulling model no longer has a private simulator.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_core::{Algorithm, CounterBuilder};
use sc_protocol::{Counter as _, NodeId};
use sc_pulling::{KingPullMode, PullCounter, PullProtocol, Pulled, Sampling};
use sc_sim::{
    adversaries, first_stable_window, required_confirmation, violation_rate, Batch, Scenario,
    SimError, Simulation,
};

fn a4() -> Algorithm {
    CounterBuilder::corollary1(1, 8).unwrap().build().unwrap()
}

fn a4_slack() -> Algorithm {
    CounterBuilder::trivial()
        .with_modulus(8)
        .with_king_slack(1)
        .boost_with_resilience(4, 1)
        .unwrap()
        .build()
        .unwrap()
}

/// Full pulling must replicate the deterministic broadcast execution
/// exactly: same initial configuration, no faults → identical output traces.
#[test]
fn full_pulling_equals_broadcast_execution() {
    use sc_protocol::SyncProtocol as _;
    let algo = a4();
    let pc = PullCounter::from_algorithm(&algo, Sampling::Full).unwrap();
    let pulled = Pulled::new(&pc);

    let mut rng = SmallRng::seed_from_u64(5);
    let det_states: Vec<_> = (0..4)
        .map(|i| algo.random_state(NodeId::new(i), &mut rng))
        .collect();
    // Mirror the same configuration in the pulling state space.
    let pull_states: Vec<_> = det_states.iter().map(mirror_state).collect();

    let mut det = Simulation::with_states(&algo, adversaries::none(), det_states, 1);
    let mut pull = Simulation::with_states(&pulled, adversaries::none(), pull_states, 2);

    for round in 0..600 {
        assert_eq!(
            det.outputs_now(),
            pull.outputs_now(),
            "diverged at round {round}"
        );
        det.step();
        pull.step();
    }
}

/// Rebuilds a deterministic `CounterState` as a `PullState` (`prev_slot` has
/// no deterministic counterpart; full mode recomputes it every round, so 0
/// is fine).
fn mirror_state(s: &sc_core::CounterState) -> sc_pulling::PullState {
    match s {
        sc_core::CounterState::Trivial(v) => sc_pulling::PullState::Trivial(*v),
        sc_core::CounterState::Boosted(b) => {
            sc_pulling::PullState::Boosted(Box::new(sc_pulling::PullBoostedState {
                inner: mirror_state(&b.inner),
                regs: b.regs,
                prev_slot: 0,
            }))
        }
        sc_core::CounterState::Lut(_) => unreachable!("no LUT levels here"),
    }
}

/// A(12, 1): one boosting level over A(4,1), deliberately run at resilience
/// F = 1 so the fault ratio F/N = 1/12 is comfortably below 1/3 — the
/// concentration regime the Lemma 8 analysis needs (for N = 4, F = 1 the
/// ratio 1/4 sits so close to the threshold that small samples glitch
/// constantly, which is expected behaviour, not a bug).
fn a12_f1() -> Algorithm {
    CounterBuilder::corollary1(1, 576) // 576 = 9·4³ = next level's c_req
        .unwrap()
        .boost_with_resilience(3, 1)
        .unwrap()
        .build()
        .unwrap()
}

#[test]
fn sampled_counter_stabilizes_with_all_kings() {
    // Fault-free: sampled thresholds are then deterministically satisfied
    // and stabilisation must be strict and within the bound.
    let algo = a4();
    let sampling = Sampling::Sampled {
        m: 9,
        king_mode: KingPullMode::All,
        fixed_seed: None,
    };
    let pc = PullCounter::from_algorithm(&algo, sampling).unwrap();
    let pulled = Pulled::new(&pc);
    for seed in 0..3 {
        let mut sim = Simulation::new(&pulled, adversaries::none(), seed);
        let report = sim
            .run_until_stable(pc.stabilization_bound() + 64)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(report.stabilization_round <= pc.stabilization_bound());
    }
    // The declared message complexity is honoured by actual plans: every
    // node's drawn plan has exactly `plan_len` requests.
    let mut rng = SmallRng::seed_from_u64(7);
    for i in 0..pc.n() {
        let node = NodeId::new(i);
        let state = pc.random_state(node, &mut rng);
        assert_eq!(pc.plan(node, &state, &mut rng).len(), pc.plan_len());
    }
}

#[test]
fn batch_sweeps_drive_the_pulled_counter() {
    // The whole point of the port: pulling scenarios sweep through the
    // shared Batch engine with its streaming OnlineDetector.
    let algo = a4();
    let pc = PullCounter::from_algorithm(&algo, Sampling::Full).unwrap();
    let pulled = Pulled::new(&pc);
    let horizon = pc.stabilization_bound() + 64;
    let scenarios = Scenario::seeds(0..8);
    let report = Batch::new(&pulled, horizon).run(&scenarios, |_| adversaries::none());
    let summary = report.summary();
    assert_eq!(summary.stabilized, 8);
    assert!(summary.worst <= pc.stabilization_bound());
    // Batch verdicts must match looped single runs on the same engine.
    for scenario in &scenarios {
        let mut sim = Simulation::new(&pulled, adversaries::none(), scenario.seed);
        let expect = sim.run_until_stable(horizon);
        assert_eq!(report.outcomes[scenario.seed as usize].result, expect);
    }
}

#[test]
fn short_horizons_fail_fast_on_the_pulled_engine() {
    // HorizonTooShort must fire *before* any round is executed — also for
    // pulling executions on the shared engine (modulus 8 ⇒ confirmation 16).
    let algo = a4();
    let pc = PullCounter::from_algorithm(&algo, Sampling::Full).unwrap();
    let pulled = Pulled::new(&pc);
    let confirm = required_confirmation(pc.modulus());
    let mut sim = Simulation::new(&pulled, adversaries::none(), 1);
    match sim.run_until_stable(confirm - 1) {
        Err(SimError::HorizonTooShort { horizon, required }) => {
            assert_eq!(horizon, confirm - 1);
            assert_eq!(required, confirm);
        }
        other => panic!("expected HorizonTooShort, got {other:?}"),
    }
    assert_eq!(sim.round(), 0, "rejected run must not execute rounds");
    // The batched path rejects every scenario the same way.
    let report =
        Batch::new(&pulled, confirm - 1).run(&Scenario::seeds(0..3), |_| adversaries::none());
    for outcome in &report.outcomes {
        assert!(matches!(
            outcome.result,
            Err(SimError::HorizonTooShort { .. })
        ));
    }
}

#[test]
fn sampled_counter_stabilizes_whp_under_byzantine_faults() {
    // Probabilistic counter (Theorem 4): stabilisation means reaching a long
    // correct window; afterwards a small per-round failure probability
    // remains (Lemma 8), so measure the rate instead of demanding a perfect
    // suffix.
    let pc = PullCounter::from_algorithm(
        &a12_f1(),
        Sampling::Sampled {
            m: 15,
            king_mode: KingPullMode::All,
            fixed_seed: None,
        },
    )
    .unwrap();
    let pulled = Pulled::new(&pc);
    let bound = pc.stabilization_bound();
    for seed in [2u64, 33] {
        let sampler = |node: NodeId, rng: &mut SmallRng| pc.random_state(node, rng);
        let adv = adversaries::random_from(sampler, [5], seed);
        let mut sim = Simulation::new(&pulled, adv, seed);
        let trace = sim.run_trace(bound + 512);
        let start = first_stable_window(&trace, pc.modulus(), 64)
            .unwrap_or_else(|| panic!("seed {seed}: no stable window found"));
        assert!(
            start <= bound,
            "seed {seed}: window starts at {start} > bound {bound}"
        );
        let rate = violation_rate(&trace, pc.modulus(), start);
        assert!(
            rate < 0.05,
            "seed {seed}: post-stabilisation failure rate {rate}"
        );
    }
}

#[test]
fn sampled_counter_stabilizes_with_predicted_kings() {
    let algo = a4_slack();
    let sampling = Sampling::Sampled {
        m: 9,
        king_mode: KingPullMode::Predicted,
        fixed_seed: None,
    };
    let pc = PullCounter::from_algorithm(&algo, sampling).unwrap();
    let pulled = Pulled::new(&pc);
    for seed in 0..3 {
        let mut sim = Simulation::new(&pulled, adversaries::none(), seed);
        let report = sim
            .run_until_stable(pc.stabilization_bound() + 64)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(report.stabilization_round <= pc.stabilization_bound());
    }
}

#[test]
fn pseudo_random_variant_stabilizes_under_oblivious_faults() {
    // Corollary 5: fix the samples once; an oblivious adversary picks the
    // fault set without seeing them. With high probability over the seed,
    // the fixed samples are good and the execution stabilises and keeps
    // counting *deterministically*.
    let algo = a12_f1();
    for fault in [0usize, 7] {
        let sampling = Sampling::Sampled {
            m: 15,
            king_mode: KingPullMode::All,
            fixed_seed: Some(1234),
        };
        let pc = PullCounter::from_algorithm(&algo, sampling).unwrap();
        let pulled = Pulled::new(&pc);
        let sampler = |node: NodeId, rng: &mut SmallRng| pc.random_state(node, rng);
        let adv = adversaries::random_from(sampler, [fault], 7);
        let mut sim = Simulation::new(&pulled, adv, 21);
        let bound = pc.stabilization_bound();
        let trace = sim.run_trace(bound + 256);
        let start = first_stable_window(&trace, pc.modulus(), 64)
            .unwrap_or_else(|| panic!("fault {fault}: no stable window"));
        assert!(start <= bound);
        // Once the fixed good samples have stabilised the system, counting
        // continues without any further failures at all.
        let rate = violation_rate(&trace, pc.modulus(), start);
        assert_eq!(
            rate, 0.0,
            "fault {fault}: pseudo-random run glitched after stabilising"
        );
    }
}

#[test]
fn sampled_pull_count_is_sublinear_for_larger_networks() {
    // A(12, 3) with sampling: pulls per round ≪ deterministic N−1 = 11…
    // sampling shines asymptotically; here we simply check the ledger:
    // k·m + m + kings, independent of N's block contents.
    let algo = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    let sampling = Sampling::Sampled {
        m: 5,
        king_mode: KingPullMode::All,
        fixed_seed: None,
    };
    let pc = PullCounter::from_algorithm(&algo, sampling).unwrap();
    // Level 2: k=3 blocks ⇒ 3·5 + 5 + (F+2 = 5) = 25 pulls, plus the inner
    // A(4,1) level: 4·5 + 5 + 3 = 28 pulls. Total 53 regardless of N.
    assert_eq!(pc.plan_len(), 53);
    // And a drawn plan really issues that many requests.
    let mut rng = SmallRng::seed_from_u64(3);
    let state = pc.random_state(NodeId::new(4), &mut rng);
    assert_eq!(pc.plan(NodeId::new(4), &state, &mut rng).len(), 53);
}

#[test]
fn per_level_sampling_policy_mixes_full_and_sampled() {
    // §5.4: sample where the level is large, pull everything where small.
    let algo = a12_f1();
    let pc = PullCounter::from_algorithm_with(&algo, &mut |p| {
        if p.n_total() > 8 {
            Sampling::Sampled {
                m: 9,
                king_mode: KingPullMode::All,
                fixed_seed: None,
            }
        } else {
            Sampling::Full
        }
    })
    .unwrap();
    // Inner A(4,1) level is Full (3 pulls from block mates); outer sampled:
    // 3·9 + 9 + (F+2 = 3) = 39. Total 42.
    assert_eq!(pc.plan_len(), 3 + 39);
    // The mixed counter still stabilises under a Byzantine node.
    let pulled = Pulled::new(&pc);
    let sampler = |node: NodeId, rng: &mut SmallRng| pc.random_state(node, rng);
    let adv = adversaries::random_from(sampler, [5], 4);
    let mut sim = Simulation::new(&pulled, adv, 4);
    let bound = pc.stabilization_bound();
    let trace = sim.run_trace(bound + 512);
    let start = first_stable_window(&trace, pc.modulus(), 64).expect("no stable window");
    assert!(start <= bound);
    let _ = algo.modulus();
}

#[test]
fn pull_state_codec_roundtrips_at_declared_width() {
    // The shared engine's Counter impl carries a bit-exact codec; it must
    // roundtrip every sampled state at exactly `state_bits` width.
    use sc_protocol::{BitVec, SyncProtocol as _};
    let algo = a12_f1();
    let pc = PullCounter::from_algorithm(
        &algo,
        Sampling::Sampled {
            m: 9,
            king_mode: KingPullMode::All,
            fixed_seed: None,
        },
    )
    .unwrap();
    let pulled = Pulled::new(&pc);
    let mut rng = SmallRng::seed_from_u64(11);
    for i in 0..pc.n() {
        let node = NodeId::new(i);
        let state = pulled.random_state(node, &mut rng);
        let mut bits = BitVec::new();
        pulled.encode_state(node, &state, &mut bits);
        assert_eq!(bits.len() as u32, pulled.state_bits(), "node {i}");
        let back = pulled.decode_state(node, &mut bits.reader()).unwrap();
        assert_eq!(back, state, "node {i}");
    }
}
