//! Execution engine for the pulling model.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_protocol::{NodeId, StepContext};
use sc_sim::{
    detect_stabilization, Adversary, OutputTrace, RoundContext, SimError, StabilizationReport,
};

use crate::protocol::PullProtocol;

/// A synchronous execution in the pulling model (§5.1).
///
/// Each round every correct node issues its pull requests; correct targets
/// respond with their start-of-round state, faulty targets answer **per
/// request** through the adversary (the same faulty node may answer two
/// pullers — or two requests of one puller — differently). The maximum
/// number of pulls issued by a correct node per round is tracked as the
/// model's message complexity.
///
/// See the crate-level documentation for an example.
pub struct PullSimulation<'a, P: PullProtocol, A> {
    protocol: &'a P,
    adversary: A,
    states: Vec<P::State>,
    faulty: Vec<NodeId>,
    honest: Vec<NodeId>,
    round: u64,
    rng: SmallRng,
    max_pulls: usize,
}

impl<'a, P, A> PullSimulation<'a, P, A>
where
    P: PullProtocol,
    A: Adversary<P::State>,
{
    /// Starts an execution from an adversarially random configuration.
    ///
    /// # Panics
    ///
    /// Panics if the adversary names a node outside the network or corrupts
    /// every node.
    pub fn new(protocol: &'a P, adversary: A, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let states: Vec<P::State> = (0..protocol.n())
            .map(|i| protocol.random_state(NodeId::new(i), &mut rng))
            .collect();
        Self::with_states(protocol, adversary, states, seed.wrapping_add(1))
    }

    /// Starts an execution from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Same conditions as [`PullSimulation::new`], plus a width mismatch.
    pub fn with_states(protocol: &'a P, adversary: A, states: Vec<P::State>, seed: u64) -> Self {
        assert_eq!(
            states.len(),
            protocol.n(),
            "initial configuration width mismatch"
        );
        let faulty: Vec<NodeId> = adversary.faulty().to_vec();
        assert!(
            faulty.iter().all(|id| id.index() < protocol.n()),
            "fault outside network"
        );
        assert!(
            faulty.len() < protocol.n(),
            "at least one node must stay correct"
        );
        let honest = (0..protocol.n())
            .map(NodeId::new)
            .filter(|id| faulty.binary_search(id).is_err())
            .collect();
        PullSimulation {
            protocol,
            adversary,
            states,
            faulty,
            honest,
            round: 0,
            rng: SmallRng::seed_from_u64(seed),
            max_pulls: 0,
        }
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Sorted identifiers of correct nodes.
    pub fn honest(&self) -> &[NodeId] {
        &self.honest
    }

    /// Current states (faulty entries are placeholders).
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The most pulls any correct node issued in any round so far — the
    /// per-node message complexity of §5.
    pub fn max_pulls_per_round(&self) -> usize {
        self.max_pulls
    }

    /// Outputs of the correct nodes.
    pub fn outputs_now(&self) -> Vec<u64> {
        self.honest
            .iter()
            .map(|&id| self.protocol.output(id, &self.states[id.index()]))
            .collect()
    }

    /// Executes one round.
    pub fn step(&mut self) {
        let ctx = RoundContext {
            round: self.round,
            honest: &self.states,
            faulty: &self.faulty,
        };
        self.adversary.begin_round(&ctx);

        let mut next: Vec<P::State> = Vec::with_capacity(self.states.len());
        for i in 0..self.states.len() {
            let puller = NodeId::new(i);
            if self.faulty.binary_search(&puller).is_ok() {
                next.push(self.states[i].clone());
                continue;
            }
            let plan = self.protocol.plan(puller, &self.states[i], &mut self.rng);
            debug_assert_eq!(
                plan.len(),
                self.protocol.plan_len(),
                "plan length must be static"
            );
            self.max_pulls = self.max_pulls.max(plan.len());
            let responses: Vec<(NodeId, P::State)> = plan
                .into_iter()
                .map(|target| {
                    let state = if self.faulty.binary_search(&target).is_ok() {
                        self.adversary.message(target, puller, &ctx)
                    } else {
                        self.states[target.index()].clone()
                    };
                    (target, state)
                })
                .collect();
            let mut step_ctx = StepContext::new(&mut self.rng);
            next.push(
                self.protocol
                    .pull_step(puller, &self.states[i], &responses, &mut step_ctx),
            );
        }
        self.states = next;
        self.round += 1;
    }

    /// Executes `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Executes `rounds` rounds recording the correct outputs each round.
    pub fn run_trace(&mut self, rounds: u64) -> OutputTrace {
        let mut trace = OutputTrace::new(self.honest.clone());
        trace.push_row(self.outputs_now());
        for _ in 0..rounds {
            self.step();
            trace.push_row(self.outputs_now());
        }
        trace
    }

    /// Runs for `horizon` rounds and checks stabilisation against `modulus`
    /// (pull protocols do not carry their modulus in the trait).
    ///
    /// The required violation-free suffix is
    /// [`sc_sim::required_confirmation`] — like the broadcast engine, the
    /// horizon must accommodate it in full rather than the requirement
    /// silently shrinking.
    ///
    /// # Errors
    ///
    /// * [`SimError::HorizonTooShort`] when `horizon` cannot fit the
    ///   required confirmation suffix — the run is not even attempted.
    /// * [`SimError::NotStabilized`] when no adequate stable suffix exists.
    pub fn run_until_stable(
        &mut self,
        horizon: u64,
        modulus: u64,
    ) -> Result<StabilizationReport, SimError> {
        let confirm = sc_sim::required_confirmation(modulus);
        if horizon < confirm {
            return Err(SimError::HorizonTooShort {
                horizon,
                required: confirm,
            });
        }
        let trace = self.run_trace(horizon);
        detect_stabilization(&trace, modulus, confirm)
    }
}

impl<'a, P: PullProtocol, A> std::fmt::Debug for PullSimulation<'a, P, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PullSimulation")
            .field("n", &self.states.len())
            .field("round", &self.round)
            .field("faulty", &self.faulty)
            .field("max_pulls", &self.max_pulls)
            .finish_non_exhaustive()
    }
}
