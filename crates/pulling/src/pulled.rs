//! The bridge from the pulling model onto the shared zero-copy engine.
//!
//! The pulling model's earlier private simulator duplicated the round loop,
//! fault bookkeeping and stabilisation plumbing of `sc-sim`. [`Pulled`]
//! replaces it: a pull protocol becomes an ordinary
//! [`SyncProtocol`] whose transition *reads only the planned entries* of its
//! [`MessageView`] — a pull request is a receiver-selected projection of the
//! borrowed message plane. Faulty targets answer through the adversary's
//! per-(sender, receiver) [`MessageSource`](sc_protocol::MessageSource)
//! leases exactly like broadcast equivocation, so the whole `sc-sim` stack
//! ([`Simulation`](sc_sim::Simulation), [`Batch`](sc_sim::Batch), the
//! streaming [`OnlineDetector`](sc_sim::OnlineDetector)) drives pulling
//! executions unchanged.
//!
//! One modelling note: on the shared plane a faulty node presents one state
//! per (sender, receiver, round). The old simulator let it answer each
//! *request* of one puller differently; since a correct node's plan never
//! gains information from asking twice, per-pair equivocation is the
//! behaviour the §5 analysis actually uses.
//!
//! Stabilisation sweeps ([`Simulation::run_until_stable`](sc_sim::Simulation::run_until_stable),
//! [`Batch`](sc_sim::Batch)) need the modulus and therefore a
//! [`Counter`] impl, provided here for `Pulled<'_, PullCounter>`. A custom
//! [`PullProtocol`] without a `Counter` impl still gets the full engine via
//! [`Simulation::run_trace`](sc_sim::Simulation::run_trace) +
//! [`detect_stabilization`](sc_sim::detect_stabilization) with an explicit
//! modulus — the moral equivalent of the old two-argument
//! `run_until_stable`.

use std::cell::Cell;

use rand::RngCore;
use sc_protocol::{
    BitReader, BitVec, CodecError, Counter, Fingerprint, MessageView, NodeId, StepContext,
    SyncProtocol,
};

use crate::counter::PullCounter;
use crate::protocol::{PullProtocol, PullResponses};

std::thread_local! {
    /// Reusable pull-plan buffer: one per worker thread, recycled across
    /// rounds and scenarios, so [`Pulled::step`] performs no heap
    /// allocation after the first round on a thread. Taken out of the cell
    /// around the step (leaving an empty `Vec` behind), which keeps the
    /// pattern safe under reentrancy — a protocol-simulating adversary
    /// stepping `Pulled` from inside its hooks simply starts a fresh buffer.
    static PLAN_SCRATCH: Cell<Vec<NodeId>> = const { Cell::new(Vec::new()) };
}

/// The receiver-selected projection of the borrowed message plane: response
/// `i` of the plan is `view.get(plan[i])` — a borrow out of the engine's
/// state buffer or the adversary pool, looked up on demand, never collected.
struct ViewResponses<'p, 'v, S> {
    plan: &'p [NodeId],
    view: &'p MessageView<'v, S>,
}

impl<S> PullResponses<S> for ViewResponses<'_, '_, S> {
    fn len(&self) -> usize {
        self.plan.len()
    }

    fn target(&self, i: usize) -> NodeId {
        self.plan[i]
    }

    fn state(&self, i: usize) -> &S {
        self.view.get(self.plan[i])
    }
}

/// A [`PullProtocol`] viewed as a broadcast-model [`SyncProtocol`]: each
/// node's transition draws its pull plan and then projects exactly the
/// planned entries out of the received view.
///
/// The wrapper is a borrow ([`Copy`]), so it can be minted on the fly:
///
/// ```
/// use sc_core::CounterBuilder;
/// use sc_pulling::{PullCounter, Pulled, Sampling};
/// use sc_sim::{adversaries, Simulation};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let algo = CounterBuilder::corollary1(1, 8)?.build()?;
/// let pc = PullCounter::from_algorithm(&algo, Sampling::Full)?;
/// let pulled = Pulled::new(&pc);
/// let mut sim = Simulation::new(&pulled, adversaries::none(), 3);
/// let report = sim.run_until_stable(pc.stabilization_bound() + 64)?;
/// assert!(report.stabilization_round <= pc.stabilization_bound());
/// assert_eq!(pulled.pulls_per_round(), 3); // N − 1 targets in full mode
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Pulled<'a, P> {
    protocol: &'a P,
}

impl<'a, P: PullProtocol> Pulled<'a, P> {
    /// Wraps a pull protocol for the shared engine.
    pub fn new(protocol: &'a P) -> Self {
        Pulled { protocol }
    }

    /// The underlying pull protocol.
    pub fn protocol(&self) -> &'a P {
        self.protocol
    }

    /// Pulls a correct node issues per round — the §5 message complexity.
    ///
    /// Plans have a statically known length ([`PullProtocol::plan_len`]),
    /// so this is exact, not an observed maximum.
    pub fn pulls_per_round(&self) -> usize {
        self.protocol.plan_len()
    }
}

impl<'a, P: PullProtocol> SyncProtocol for Pulled<'a, P> {
    type State = P::State;

    fn n(&self) -> usize {
        self.protocol.n()
    }

    fn step(
        &self,
        node: NodeId,
        view: &MessageView<'_, Self::State>,
        ctx: &mut StepContext<'_>,
    ) -> Self::State {
        let me = view.get(node);
        // The plan buffer is recycled thread-locally and the responses are
        // a view-backed projection: the whole pulling round performs zero
        // heap traffic in this adapter.
        let mut plan = PLAN_SCRATCH.take();
        plan.clear();
        self.protocol.plan_into(node, me, ctx.rng, &mut plan);
        debug_assert_eq!(
            plan.len(),
            self.protocol.plan_len(),
            "plan length must be static"
        );
        let responses = ViewResponses { plan: &plan, view };
        let next = self.protocol.pull_step(node, me, &responses, ctx);
        PLAN_SCRATCH.set(plan);
        next
    }

    fn output(&self, node: NodeId, state: &Self::State) -> u64 {
        self.protocol.output(node, state)
    }

    fn random_state(&self, node: NodeId, rng: &mut dyn RngCore) -> Self::State {
        self.protocol.random_state(node, rng)
    }
}

impl<'a> Counter for Pulled<'a, PullCounter> {
    fn modulus(&self) -> u64 {
        self.protocol.modulus()
    }

    fn resilience(&self) -> usize {
        self.protocol.resilience()
    }

    fn state_bits(&self) -> u32 {
        self.protocol.state_bits()
    }

    fn stabilization_bound(&self) -> u64 {
        self.protocol.stabilization_bound()
    }

    fn encode_state(&self, node: NodeId, state: &Self::State, out: &mut BitVec) {
        self.protocol.encode_state(node, state, out);
    }

    fn decode_state(
        &self,
        node: NodeId,
        input: &mut BitReader<'_>,
    ) -> Result<Self::State, CodecError> {
        self.protocol.decode_state(node, input)
    }
}

impl<'a> Fingerprint for Pulled<'a, PullCounter> {
    fn deterministic_transition(&self) -> bool {
        // A pulling round is deterministic exactly when every level's plan
        // is: full pulling, or the pseudo-random variant's fixed samples
        // (Corollary 5). Fresh-sampling levels (Theorem 4) draw their plan
        // from the step RNG, so they opt out and early-decision sweeps fall
        // back to the full horizon — soundness is typed, not assumed.
        self.protocol.deterministic_plans()
    }
}
