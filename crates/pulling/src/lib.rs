//! The pulling model and its randomised counters (§5).
//!
//! In the **pulling model** a node does not broadcast: each round it
//! *contacts* a set of nodes, and every contacted node responds with its
//! current state (faulty nodes may answer each request arbitrarily and
//! differently). The cost of an exchange is attributed to the pulling node —
//! in a circuit, the puller pays the energy for the link — so the relevant
//! complexity is the maximum number of pulls a *correct* node performs per
//! round.
//!
//! The deterministic counters of §3–4 translate to this model by pulling all
//! `n − 1` other nodes ([`Sampling::Full`]). §5 shows that sampling
//! `M = Θ(log η)` states per block and replacing the phase-king thresholds
//! `N−F` / `F+1` by `⅔M` / `⅓M` preserves all majority-vote guarantees with
//! high probability (Lemmas 8–9, Theorem 4), reducing the per-node message
//! complexity to `O(k log η)` per level — polylogarithmic overall
//! (Corollary 4). Fixing the random choices once yields the pseudo-random
//! variant against oblivious adversaries (Corollary 5).
//!
//! This crate provides:
//!
//! * [`PullProtocol`] — the execution model's protocol interface, with
//!   borrowed responses;
//! * [`Pulled`] — the bridge onto the shared zero-copy engine: any pull
//!   protocol becomes a broadcast-model
//!   [`SyncProtocol`](sc_protocol::SyncProtocol) whose transition reads only
//!   the planned entries of its view, so pulling executions run on
//!   [`sc_sim::Simulation`] / [`sc_sim::Batch`] with streaming stabilisation
//!   detection (there is no private pulling simulator any more);
//! * [`PullCounter`] — the Theorem 4 counter, built from any deterministic
//!   [`Algorithm`](sc_core::Algorithm) via [`PullCounter::from_algorithm`],
//!   with per-level [`Sampling`] choices;
//! * [`KingPullMode`] — how the king's value is obtained: pull all `F+2+s`
//!   candidates, or *predict* the next slot and pull one (requires king
//!   slack ≥ 1; see DESIGN.md §4).
//!
//! # Example
//!
//! ```
//! use sc_core::CounterBuilder;
//! use sc_pulling::{KingPullMode, PullCounter, Pulled, Sampling};
//! use sc_sim::{adversaries, Simulation};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let algo = CounterBuilder::corollary1(1, 8)?.build()?;
//! let pc = PullCounter::from_algorithm(&algo, Sampling::Full)?;
//! let pulled = Pulled::new(&pc);
//! let mut sim = Simulation::new(&pulled, adversaries::none(), 3);
//! sim.run(16);
//! assert!(pulled.pulls_per_round() <= 4 + 2); // N − 1 targets + kings
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod protocol;
mod pulled;

pub use counter::{KingPullMode, PullBoosted, PullBoostedState, PullCounter, PullState, Sampling};
pub use protocol::{PullProtocol, PullResponses};
pub use pulled::Pulled;
