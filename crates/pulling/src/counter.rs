//! The pulling-model counter of Theorem 4.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use sc_consensus::instructions::{execute_slot, IncrementMode};
use sc_consensus::{PhaseKingParams, PkRegisters, INFINITY};
use sc_core::{Algorithm, BoostParams, TrivialCounter};
use sc_protocol::{
    bits_for, majority_or, BitReader, BitVec, CodecError, NodeId, ParamError, StepContext, Tally,
};

use crate::protocol::{PullProtocol, PullResponses};

/// How a level of the pulling counter gathers information.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sampling {
    /// Pull every other node: deterministic, message cost `N − 1` per round
    /// (the broadcast construction transplanted into the pulling model).
    Full,
    /// §5.3 sampling: `m` states per block for the leader votes, `m` states
    /// overall for the phase-king tally, with thresholds `⅔m` / `⅓m`.
    Sampled {
        /// Samples per majority vote, `M = Θ(log η)` in the analysis.
        m: usize,
        /// How the king's value is pulled.
        king_mode: KingPullMode,
        /// `Some(seed)`: the pseudo-random variant of Corollary 5 — every
        /// node fixes its sample targets once (derived from the seed) and
        /// reuses them forever. `None`: fresh samples every round
        /// (Theorem 4).
        fixed_seed: Option<u64>,
    },
}

/// How the phase-king value `a[ℓ]` is obtained in a sampled level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KingPullMode {
    /// Pull all `F+2+s` king candidates every round: always correct, costs
    /// `O(F)` extra pulls (fine for small `F`).
    All,
    /// Predict next round's slot from this round's majority-voted slot and
    /// pull a single king. Requires `king_slack ≥ 1`: the prediction can be
    /// wrong in the first round of the common window, spending one king
    /// group, and the slack restores the "some complete group has a correct
    /// king" pigeonhole (DESIGN.md §4).
    Predicted,
}

/// A synchronous counter in the pulling model: either the trivial base or a
/// boosted level with its own [`Sampling`] policy.
///
/// Build one from a deterministic [`Algorithm`] via
/// [`PullCounter::from_algorithm`]; see the crate-level example.
#[derive(Clone, Debug)]
pub enum PullCounter {
    /// The trivial one-node counter (no pulls at all).
    Trivial(TrivialCounter),
    /// A boosted level.
    Boosted(Box<PullBoosted>),
}

/// One boosted level of a [`PullCounter`].
#[derive(Clone, Debug)]
pub struct PullBoosted {
    inner: PullCounter,
    params: BoostParams,
    sampling: Sampling,
    /// Phase-king parameters with the thresholds this level actually uses
    /// (broadcast `N−F`/`F+1` for [`Sampling::Full`], `⅔m`/`⅓m` sampled).
    pk: PhaseKingParams,
}

/// Per-node state of a [`PullCounter`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PullState {
    /// Trivial counter value.
    Trivial(u64),
    /// Boosted level state.
    Boosted(Box<PullBoostedState>),
}

/// State of one node at a boosted level: the inner state, the phase-king
/// registers, and the slot voted in the previous round (used only by
/// [`KingPullMode::Predicted`]).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PullBoostedState {
    /// Inner counter state.
    pub inner: PullState,
    /// Phase-king registers.
    pub regs: PkRegisters,
    /// The slot this node voted last round (`∈ [τ]`).
    pub prev_slot: u64,
}

impl PullState {
    /// The trivial value.
    ///
    /// # Panics
    ///
    /// Panics on a state of a different level kind.
    #[track_caller]
    pub fn as_trivial(&self) -> u64 {
        match self {
            PullState::Trivial(v) => *v,
            other => panic!("expected trivial pull state, got {other:?}"),
        }
    }

    /// The boosted-level state.
    ///
    /// # Panics
    ///
    /// Panics on a state of a different level kind.
    #[track_caller]
    pub fn as_boosted(&self) -> &PullBoostedState {
        match self {
            PullState::Boosted(b) => b,
            other => panic!("expected boosted pull state, got {other:?}"),
        }
    }
}

impl PullCounter {
    /// Transplants a deterministic counter stack into the pulling model,
    /// applying `sampling` at every boosted level.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when the stack contains a LUT level (not
    /// supported in the pulling model), when a sampled level has `m < 3`,
    /// or when [`KingPullMode::Predicted`] is requested without
    /// `king_slack ≥ 1`.
    pub fn from_algorithm(algo: &Algorithm, sampling: Sampling) -> Result<Self, ParamError> {
        Self::from_algorithm_with(algo, &mut |_| sampling)
    }

    /// Like [`PullCounter::from_algorithm`] with a per-level policy: the
    /// paper's §5.4 prescription is to sample only where the level is large
    /// (`N ≫ log η`) and pull deterministically below — pass a chooser
    /// inspecting each level's [`BoostParams`].
    ///
    /// # Example
    ///
    /// ```
    /// use sc_core::CounterBuilder;
    /// use sc_pulling::{KingPullMode, PullCounter, Sampling};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let algo = CounterBuilder::corollary1(1, 576)?.boost_with_resilience(3, 1)?.build()?;
    /// // Sample only levels with more than 8 nodes.
    /// let pc = PullCounter::from_algorithm_with(&algo, &mut |p| {
    ///     if p.n_total() > 8 {
    ///         Sampling::Sampled { m: 9, king_mode: KingPullMode::All, fixed_seed: None }
    ///     } else {
    ///         Sampling::Full
    ///     }
    /// })?;
    /// assert!(pc.as_boosted().is_some());
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Same conditions as [`PullCounter::from_algorithm`].
    pub fn from_algorithm_with(
        algo: &Algorithm,
        chooser: &mut dyn FnMut(&BoostParams) -> Sampling,
    ) -> Result<Self, ParamError> {
        match algo {
            Algorithm::Trivial(t) => Ok(PullCounter::Trivial(*t)),
            Algorithm::Lut(_) => Err(ParamError::constraint(
                "LUT counters have no pulling-model translation",
            )),
            Algorithm::Boosted(b) => {
                let inner = PullCounter::from_algorithm_with(b.inner(), chooser)?;
                let params = b.params().clone();
                let sampling = chooser(&params);
                let pk = match sampling {
                    Sampling::Full => *params.pk(),
                    Sampling::Sampled { m, king_mode, .. } => {
                        if king_mode == KingPullMode::Predicted && params.king_slack() < 1 {
                            return Err(ParamError::constraint(
                                "predicted king pulls require king_slack ≥ 1 \
                                 (build with CounterBuilder::with_king_slack)",
                            ));
                        }
                        PhaseKingParams::sampled(
                            params.n_total(),
                            params.f_total(),
                            params.c_out(),
                            m,
                            params.pk().king_groups(),
                        )?
                    }
                };
                Ok(PullCounter::Boosted(Box::new(PullBoosted {
                    inner,
                    params,
                    sampling,
                    pk,
                })))
            }
        }
    }

    /// Counter modulus `c`.
    pub fn modulus(&self) -> u64 {
        match self {
            PullCounter::Trivial(t) => t.modulus(),
            PullCounter::Boosted(b) => b.params.c_out(),
        }
    }

    /// Resilience `f` (against worst-case faults for [`Sampling::Full`],
    /// with high probability for sampled levels — Theorem 4).
    pub fn resilience(&self) -> usize {
        match self {
            PullCounter::Trivial(_) => 0,
            PullCounter::Boosted(b) => b.params.f_total(),
        }
    }

    /// Stabilisation bound `T` (deterministic for full pulling; holds with
    /// high probability per round for sampled levels).
    pub fn stabilization_bound(&self) -> u64 {
        match self {
            PullCounter::Trivial(_) => 0,
            PullCounter::Boosted(b) => b.inner.stabilization_bound() + b.params.time_overhead(),
        }
    }

    /// State bits, including the `⌈log τ⌉` bits of the previous-slot field
    /// carried for king prediction.
    pub fn state_bits(&self) -> u32 {
        match self {
            PullCounter::Trivial(t) => t.state_bits(),
            PullCounter::Boosted(b) => {
                b.inner.state_bits() + b.params.state_overhead_bits() + bits_for(b.params.tau())
            }
        }
    }

    /// The boosted top level, if any.
    pub fn as_boosted(&self) -> Option<&PullBoosted> {
        match self {
            PullCounter::Boosted(b) => Some(b),
            PullCounter::Trivial(_) => None,
        }
    }

    /// Whether every level's pull plan is a deterministic function of the
    /// node and its state: [`Sampling::Full`] everywhere, or sampled levels
    /// running the pseudo-random variant (`fixed_seed`). This is the typed
    /// soundness marker gating early-decision sweeps — fresh-sampling
    /// levels (Theorem 4) draw from the step RNG and must never take a
    /// cycle-based early exit.
    pub fn deterministic_plans(&self) -> bool {
        match self {
            PullCounter::Trivial(_) => true,
            PullCounter::Boosted(b) => {
                let level = match b.sampling {
                    Sampling::Full => true,
                    Sampling::Sampled { fixed_seed, .. } => fixed_seed.is_some(),
                };
                level && b.inner.deterministic_plans()
            }
        }
    }

    /// Encodes `state` into exactly [`PullCounter::state_bits`] bits —
    /// inner state, phase-king registers, then the previous-slot field.
    pub fn encode_state(&self, node: NodeId, state: &PullState, out: &mut BitVec) {
        match self {
            PullCounter::Trivial(t) => out.push_bits(state.as_trivial(), t.state_bits()),
            PullCounter::Boosted(b) => {
                let s = state.as_boosted();
                let (_, local) = b.params.block_of(node);
                b.inner.encode_state(NodeId::new(local), &s.inner, out);
                s.regs.encode(b.params.c_out(), out);
                out.push_bits(s.prev_slot, bits_for(b.params.tau()));
            }
        }
    }

    /// Decodes a state previously produced by [`PullCounter::encode_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the bit string is too short or a field
    /// is outside its domain.
    pub fn decode_state(
        &self,
        node: NodeId,
        input: &mut BitReader<'_>,
    ) -> Result<PullState, CodecError> {
        match self {
            PullCounter::Trivial(t) => {
                let raw = input.read_bits(t.state_bits())?;
                if raw >= t.modulus() {
                    return Err(CodecError::InvalidField {
                        field: "trivial pull counter",
                        value: raw,
                    });
                }
                Ok(PullState::Trivial(raw))
            }
            PullCounter::Boosted(b) => {
                let (_, local) = b.params.block_of(node);
                let inner = b.inner.decode_state(NodeId::new(local), input)?;
                let regs = PkRegisters::decode(b.params.c_out(), input)?;
                let prev_slot = input.read_bits(bits_for(b.params.tau()))?;
                if prev_slot >= b.params.tau() {
                    return Err(CodecError::InvalidField {
                        field: "previous slot",
                        value: prev_slot,
                    });
                }
                Ok(PullState::Boosted(Box::new(PullBoostedState {
                    inner,
                    regs,
                    prev_slot,
                })))
            }
        }
    }
}

impl PullBoosted {
    /// The construction parameters of this level.
    pub fn params(&self) -> &BoostParams {
        &self.params
    }

    /// The sampling policy of this level.
    pub fn sampling(&self) -> Sampling {
        self.sampling
    }

    /// RNG used for planning: fresh randomness, or the per-node fixed stream
    /// of the pseudo-random variant.
    fn plan_rng(&self, node: NodeId, rng: &mut dyn RngCore) -> SmallRng {
        match self.sampling {
            Sampling::Sampled {
                fixed_seed: Some(seed),
                ..
            } => SmallRng::seed_from_u64(
                seed ^ (0x9E37_79B9_7F4A_7C15u64).wrapping_mul(node.index() as u64 + 1),
            ),
            _ => SmallRng::seed_from_u64(rng.next_u64()),
        }
    }

    fn king_pull_count(&self) -> usize {
        match self.sampling {
            Sampling::Full => 0, // kings are covered by the full pull
            Sampling::Sampled {
                king_mode: KingPullMode::All,
                ..
            } => self.params.pk().king_groups() as usize,
            Sampling::Sampled {
                king_mode: KingPullMode::Predicted,
                ..
            } => 1,
        }
    }
}

impl PullProtocol for PullCounter {
    type State = PullState;

    fn n(&self) -> usize {
        match self {
            PullCounter::Trivial(_) => 1,
            PullCounter::Boosted(b) => b.params.n_total(),
        }
    }

    fn plan_len(&self) -> usize {
        match self {
            PullCounter::Trivial(_) => 0,
            PullCounter::Boosted(b) => match b.sampling {
                Sampling::Full => b.params.n_total() - 1,
                Sampling::Sampled { m, .. } => {
                    b.inner.plan_len() + b.params.k() * m + m + b.king_pull_count()
                }
            },
        }
    }

    fn plan_into(
        &self,
        node: NodeId,
        state: &Self::State,
        rng: &mut dyn RngCore,
        out: &mut Vec<NodeId>,
    ) {
        match self {
            PullCounter::Trivial(_) => {}
            PullCounter::Boosted(b) => {
                let p = &b.params;
                match b.sampling {
                    Sampling::Full => {
                        out.extend((0..p.n_total()).map(NodeId::new).filter(|&u| u != node));
                    }
                    Sampling::Sampled { m, king_mode, .. } => {
                        let mut plan_rng = b.plan_rng(node, rng);
                        let (block, _local) = p.block_of(node);
                        let start = block * p.n_inner();
                        let me = state.as_boosted();
                        // 1. The inner counter's own pulls, appended in
                        //    place and then block-offset — no inner vector.
                        let inner_from = out.len();
                        b.inner.plan_into(
                            NodeId::new(node.index() - start),
                            &me.inner,
                            &mut plan_rng,
                            out,
                        );
                        for target in &mut out[inner_from..] {
                            *target = NodeId::new(start + target.index());
                        }
                        // 2. m samples per block for the leader votes.
                        for i in 0..p.k() {
                            for _ in 0..m {
                                let j = plan_rng.random_range(0..p.n_inner());
                                out.push(p.member(i, j));
                            }
                        }
                        // 3. m samples over all nodes for the phase-king tally.
                        for _ in 0..m {
                            out.push(NodeId::new(plan_rng.random_range(0..p.n_total())));
                        }
                        // 4. King candidates.
                        match king_mode {
                            KingPullMode::All => {
                                for g in 0..p.pk().king_groups() {
                                    out.push(p.pk().king_of_group(g));
                                }
                            }
                            KingPullMode::Predicted => {
                                let next_slot = (me.prev_slot + 1) % p.tau();
                                out.push(p.pk().king_of_group(next_slot / 3));
                            }
                        }
                    }
                }
            }
        }
    }

    fn pull_step(
        &self,
        node: NodeId,
        state: &Self::State,
        responses: &dyn PullResponses<Self::State>,
        ctx: &mut StepContext<'_>,
    ) -> Self::State {
        match self {
            PullCounter::Trivial(t) => PullState::Trivial(t.next(state.as_trivial())),
            PullCounter::Boosted(b) => PullState::Boosted(Box::new(b.pull_step(
                node,
                state.as_boosted(),
                responses,
                ctx,
            ))),
        }
    }

    fn output(&self, _node: NodeId, state: &Self::State) -> u64 {
        match self {
            PullCounter::Trivial(t) => state.as_trivial() % t.modulus(),
            PullCounter::Boosted(b) => state.as_boosted().regs.output(b.params.c_out()),
        }
    }

    fn random_state(&self, node: NodeId, rng: &mut dyn RngCore) -> Self::State {
        match self {
            PullCounter::Trivial(t) => PullState::Trivial(rng.next_u64() % t.modulus()),
            PullCounter::Boosted(b) => {
                let (_, local) = b.params.block_of(node);
                let inner = b.inner.random_state(NodeId::new(local), rng);
                let c = b.params.c_out();
                let a = if rng.random_bool(0.125) {
                    INFINITY
                } else {
                    rng.random_range(0..c)
                };
                PullState::Boosted(Box::new(PullBoostedState {
                    inner,
                    regs: PkRegisters::new(a, rng.random_bool(0.5)),
                    prev_slot: rng.random_range(0..b.params.tau()),
                }))
            }
        }
    }
}

/// Zero-allocation projection of a contiguous response range onto an inner
/// level: ids are rebased to block-local, states project to the inner field.
struct ProjectedInner<'a> {
    base: &'a dyn PullResponses<PullState>,
    offset: usize,
    len: usize,
    id_base: usize,
}

impl PullResponses<PullState> for ProjectedInner<'_> {
    fn len(&self) -> usize {
        self.len
    }

    fn target(&self, i: usize) -> NodeId {
        NodeId::new(self.base.target(self.offset + i).index() - self.id_base)
    }

    fn state(&self, i: usize) -> &PullState {
        &self.base.state(self.offset + i).as_boosted().inner
    }
}

/// Zero-allocation inner responses of a full-mode block: the block mates'
/// states in id order, skipping the node itself.
struct BlockResponses<'a> {
    states: &'a [&'a PullBoostedState],
    skip: usize,
}

impl BlockResponses<'_> {
    fn slot(&self, i: usize) -> usize {
        if i < self.skip {
            i
        } else {
            i + 1
        }
    }
}

impl PullResponses<PullState> for BlockResponses<'_> {
    fn len(&self) -> usize {
        self.states.len() - 1
    }

    fn target(&self, i: usize) -> NodeId {
        NodeId::new(self.slot(i))
    }

    fn state(&self, i: usize) -> &PullState {
        &self.states[self.slot(i)].inner
    }
}

impl PullBoosted {
    /// The transition of one node at this level.
    fn pull_step(
        &self,
        node: NodeId,
        me: &PullBoostedState,
        responses: &dyn PullResponses<PullState>,
        ctx: &mut StepContext<'_>,
    ) -> PullBoostedState {
        match self.sampling {
            Sampling::Full => self.full_step(node, me, responses, ctx),
            Sampling::Sampled { m, king_mode, .. } => {
                self.sampled_step(node, me, responses, ctx, m, king_mode)
            }
        }
    }

    /// Full pulling: reconstruct the broadcast view and run the
    /// deterministic §3 logic verbatim.
    fn full_step(
        &self,
        node: NodeId,
        me: &PullBoostedState,
        responses: &dyn PullResponses<PullState>,
        ctx: &mut StepContext<'_>,
    ) -> PullBoostedState {
        let p = &self.params;
        let n_total = p.n_total();
        // Rebuild the full state vector: responses are (all others, in id
        // order); own state fills the gap.
        let mut all: Vec<&PullBoostedState> = Vec::with_capacity(n_total);
        let mut next_response = 0;
        for v in 0..n_total {
            if v == node.index() {
                all.push(me);
            } else {
                debug_assert!(next_response < responses.len(), "full plan covers all");
                debug_assert_eq!(responses.target(next_response).index(), v);
                all.push(responses.state(next_response).as_boosted());
                next_response += 1;
            }
        }

        // 1. Inner update on the own block (full information).
        let (block, local) = p.block_of(node);
        let start = block * p.n_inner();
        let next_inner = self.full_inner_step(local, &all[start..start + p.n_inner()], ctx);

        // 2. Three-stage majority vote (§3.3).
        let b_of = |i: usize, j: usize| {
            let s = all[p.member(i, j).index()];
            let value = self.inner_output(j, &s.inner);
            p.pointer(i, value)
        };
        let mut block_support = Vec::with_capacity(p.k());
        for i in 0..p.k() {
            block_support.push(majority_or(
                (0..p.n_inner()).map(|j| b_of(i, j).b as u64),
                0,
            ));
        }
        let leader = majority_or(block_support.iter().copied(), 0) as usize;
        let slot = majority_or((0..p.n_inner()).map(|j| b_of(leader, j).r), 0);

        // 3. Phase king in counting mode.
        let tally: Tally = all.iter().map(|s| s.regs.a).collect();
        let king = p.pk().king_of_group(slot / 3);
        let king_value = all[king.index()].regs.a;
        let regs = execute_slot(
            &self.pk,
            me.regs,
            slot,
            &tally,
            king_value,
            IncrementMode::Counting,
        );

        PullBoostedState {
            inner: next_inner,
            regs,
            prev_slot: slot,
        }
    }

    /// Inner update in full mode: the inner protocol also runs in full mode,
    /// so its "responses" are the block-mates' states — projected by
    /// reference through a positional adapter, never cloned or collected.
    fn full_inner_step(
        &self,
        local: usize,
        block_states: &[&PullBoostedState],
        ctx: &mut StepContext<'_>,
    ) -> PullState {
        let inner_responses = BlockResponses {
            states: block_states,
            skip: local,
        };
        self.inner.pull_step(
            NodeId::new(local),
            &block_states[local].inner,
            &inner_responses,
            ctx,
        )
    }

    fn inner_output(&self, local: usize, state: &PullState) -> u64 {
        self.inner.output(NodeId::new(local), state)
    }

    /// §5.3 sampled step.
    fn sampled_step(
        &self,
        node: NodeId,
        me: &PullBoostedState,
        responses: &dyn PullResponses<PullState>,
        ctx: &mut StepContext<'_>,
        m: usize,
        king_mode: KingPullMode,
    ) -> PullBoostedState {
        let p = &self.params;
        let (block, _) = p.block_of(node);
        let start = block * p.n_inner();

        // Split the response vector structurally, by position.
        let inner_len = self.inner.plan_len();
        let block_off = inner_len;
        let pk_off = block_off + p.k() * m;
        let king_off = pk_off + m;
        let king_len = responses.len() - king_off;

        // 1. Inner update on the inner counter's own samples, projected to
        //    the inner state space by reference (the pulled nodes answered
        //    with their full state at *this* level).
        let inner_responses = ProjectedInner {
            base: responses,
            offset: 0,
            len: inner_len,
            id_base: start,
        };
        let next_inner = self.inner.pull_step(
            NodeId::new(node.index() - start),
            &me.inner,
            &inner_responses,
            ctx,
        );

        // 2. Sampled leader votes (Lemma 9): per-block majorities over the m
        //    samples, then the leader block, then its slot counter.
        let pointer_of = |sample: usize| {
            let (i, j) = p.block_of(responses.target(block_off + sample));
            let value =
                self.inner_output(j, &responses.state(block_off + sample).as_boosted().inner);
            p.pointer(i, value)
        };
        let mut block_support = Vec::with_capacity(p.k());
        for i in 0..p.k() {
            block_support.push(majority_or(
                (i * m..(i + 1) * m).map(|s| pointer_of(s).b as u64),
                0,
            ));
        }
        let leader = majority_or(block_support.iter().copied(), 0) as usize;
        let slot = majority_or((leader * m..(leader + 1) * m).map(|s| pointer_of(s).r), 0);

        // 3. Sampled phase king (Lemma 8): thresholds ⅔m / ⅓m.
        let tally: Tally = (0..m)
            .map(|i| responses.state(pk_off + i).as_boosted().regs.a)
            .collect();
        let king = p.pk().king_of_group(slot / 3);
        let king_pull = (0..king_len).find(|&i| responses.target(king_off + i) == king);
        let king_value = match king_mode {
            KingPullMode::All => {
                let i = king_pull.expect("all king candidates pulled");
                responses.state(king_off + i).as_boosted().regs.a
            }
            KingPullMode::Predicted => king_pull.map_or(INFINITY, |i| {
                responses.state(king_off + i).as_boosted().regs.a
            }),
        };
        let regs = execute_slot(
            &self.pk,
            me.regs,
            slot,
            &tally,
            king_value,
            IncrementMode::Counting,
        );

        PullBoostedState {
            inner: next_inner,
            regs,
            prev_slot: slot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::CounterBuilder;

    fn a4() -> Algorithm {
        CounterBuilder::corollary1(1, 8).unwrap().build().unwrap()
    }

    #[test]
    fn full_plan_covers_all_other_nodes() {
        let pc = PullCounter::from_algorithm(&a4(), Sampling::Full).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let state = pc.random_state(NodeId::new(1), &mut rng);
        let plan = pc.plan(NodeId::new(1), &state, &mut rng);
        assert_eq!(plan.len(), pc.plan_len());
        assert_eq!(plan.len(), 3);
        assert!(!plan.contains(&NodeId::new(1)));
    }

    #[test]
    fn sampled_plan_has_the_declared_structure() {
        let sampling = Sampling::Sampled {
            m: 6,
            king_mode: KingPullMode::All,
            fixed_seed: None,
        };
        let pc = PullCounter::from_algorithm(&a4(), sampling).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let state = pc.random_state(NodeId::new(2), &mut rng);
        let plan = pc.plan(NodeId::new(2), &state, &mut rng);
        // inner (trivial: 0) + k·m (4·6) + m (6) + kings (F+2 = 3).
        assert_eq!(plan.len(), 24 + 6 + 3);
        assert_eq!(plan.len(), pc.plan_len());
    }

    #[test]
    fn predicted_kings_require_slack() {
        let sampling = Sampling::Sampled {
            m: 6,
            king_mode: KingPullMode::Predicted,
            fixed_seed: None,
        };
        assert!(PullCounter::from_algorithm(&a4(), sampling).is_err());
        let slack = CounterBuilder::trivial()
            .with_modulus(8)
            .with_king_slack(1)
            .boost_with_resilience(4, 1)
            .unwrap()
            .build()
            .unwrap();
        let pc = PullCounter::from_algorithm(&slack, sampling).unwrap();
        // One king pull instead of F+2+s = 4.
        assert_eq!(pc.plan_len(), 4 * 6 + 6 + 1);
    }

    #[test]
    fn fixed_seed_plans_repeat_every_round() {
        let sampling = Sampling::Sampled {
            m: 5,
            king_mode: KingPullMode::All,
            fixed_seed: Some(99),
        };
        let pc = PullCounter::from_algorithm(&a4(), sampling).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let state = pc.random_state(NodeId::new(0), &mut rng);
        let p1 = pc.plan(NodeId::new(0), &state, &mut rng);
        let p2 = pc.plan(NodeId::new(0), &state, &mut rng);
        assert_eq!(p1, p2);
        // Different nodes still sample differently.
        let s3 = pc.random_state(NodeId::new(3), &mut rng);
        let p3 = pc.plan(NodeId::new(3), &s3, &mut rng);
        assert_ne!(p1, p3);
    }

    #[test]
    fn lut_stacks_are_rejected() {
        use sc_core::LutSpec;
        let lut = Algorithm::lut(LutSpec {
            n: 1,
            f: 0,
            c: 2,
            states: 2,
            transition: vec![vec![1, 0]],
            output: vec![vec![0, 1]],
            stabilization_bound: 0,
        })
        .unwrap();
        assert!(PullCounter::from_algorithm(&lut, Sampling::Full).is_err());
    }
}
