//! The pull-based protocol interface.

use rand::RngCore;
use sc_protocol::{NodeId, StepContext};

/// A synchronous protocol in the pulling model (§5.1).
///
/// Each round a node (1) chooses which nodes to contact ([`PullProtocol::plan`]),
/// (2) receives one response per request — in request order, duplicates
/// allowed — and (3) updates its state ([`PullProtocol::pull_step`]).
///
/// The *plan* may be randomised (fresh samples per round, Theorem 4) or
/// fixed (pseudo-random variant, Corollary 5); its **length** must be a
/// deterministic function of the protocol parameters, so that implementations
/// can split the response vector structurally.
///
/// Responses are **borrowed**: on the shared zero-copy engine a pull is a
/// receiver-selected projection of the round's message plane, so
/// `pull_step` receives references into the engine's state buffers (and, for
/// faulty targets, into the adversary state pool) — no response is cloned to
/// be delivered, and recursive constructions project inner-level responses
/// by reference too.
pub trait PullProtocol {
    /// Local node state.
    type State: Clone + std::fmt::Debug;

    /// Number of nodes.
    fn n(&self) -> usize;

    /// The nodes contacted by `node` this round, in request order;
    /// repetitions are allowed (sampling with replacement).
    fn plan(&self, node: NodeId, state: &Self::State, rng: &mut dyn RngCore) -> Vec<NodeId>;

    /// Number of requests [`PullProtocol::plan`] issues, which must not
    /// depend on the state or randomness.
    fn plan_len(&self) -> usize;

    /// Computes the next state from the node's own state and the borrowed
    /// responses, where `responses[i]` answers `plan[i]`.
    fn pull_step(
        &self,
        node: NodeId,
        state: &Self::State,
        responses: &[(NodeId, &Self::State)],
        ctx: &mut StepContext<'_>,
    ) -> Self::State;

    /// Output value of a node.
    fn output(&self, node: NodeId, state: &Self::State) -> u64;

    /// Samples an arbitrary representable state (arbitrary initialisation
    /// and adversarial fabrication).
    fn random_state(&self, node: NodeId, rng: &mut dyn RngCore) -> Self::State;
}
