//! The pull-based protocol interface.

use rand::RngCore;
use sc_protocol::{NodeId, StepContext};

/// Positional, borrowed responses to a pull plan: entry `i` answers request
/// `i` of the plan, in request order (duplicates allowed).
///
/// The responses are an *accessor*, not a materialised vector: on the shared
/// zero-copy engine they project straight out of the round's
/// [`MessageView`](sc_protocol::MessageView) (and, for faulty targets, the
/// adversary state pool), and recursive constructions project inner-level
/// responses through further zero-allocation adapters. A plain
/// `&[(NodeId, &S)]` slice also implements the trait, which keeps tests and
/// custom harnesses simple.
pub trait PullResponses<S> {
    /// Number of responses (= the plan length).
    fn len(&self) -> usize;

    /// Whether the plan was empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The node that request `i` contacted.
    fn target(&self, i: usize) -> NodeId;

    /// The state request `i` received, borrowed from the engine's buffers.
    fn state(&self, i: usize) -> &S;
}

// Implemented on the *reference* type because only a `Sized` type can
// coerce to `&dyn PullResponses<S>`, which is what `pull_step` takes:
// pass `&&responses[..]`.
impl<S> PullResponses<S> for &[(NodeId, &S)] {
    fn len(&self) -> usize {
        <[(NodeId, &S)]>::len(self)
    }

    fn target(&self, i: usize) -> NodeId {
        self[i].0
    }

    fn state(&self, i: usize) -> &S {
        self[i].1
    }
}

/// A synchronous protocol in the pulling model (§5.1).
///
/// Each round a node (1) chooses which nodes to contact
/// ([`PullProtocol::plan_into`]), (2) receives one response per request — in
/// request order, duplicates allowed — and (3) updates its state
/// ([`PullProtocol::pull_step`]).
///
/// The *plan* may be randomised (fresh samples per round, Theorem 4) or
/// fixed (pseudo-random variant, Corollary 5); its **length** must be a
/// deterministic function of the protocol parameters, so that implementations
/// can split the response vector structurally.
///
/// Both sides of the exchange are allocation-free on the hot path: plans are
/// appended into a caller-owned reusable buffer, and responses are
/// **borrowed** through the positional [`PullResponses`] accessor — no
/// response is cloned to be delivered, and recursive constructions project
/// inner responses by reference too.
pub trait PullProtocol {
    /// Local node state.
    type State: Clone + std::fmt::Debug;

    /// Number of nodes.
    fn n(&self) -> usize;

    /// Appends the nodes contacted by `node` this round to `out`, in
    /// request order; repetitions are allowed (sampling with replacement).
    /// Exactly [`PullProtocol::plan_len`] entries must be appended.
    fn plan_into(
        &self,
        node: NodeId,
        state: &Self::State,
        rng: &mut dyn RngCore,
        out: &mut Vec<NodeId>,
    );

    /// The plan as a fresh vector — the convenience wrapper around
    /// [`PullProtocol::plan_into`] for tests and one-off inspection; engines
    /// use `plan_into` with a reused buffer.
    fn plan(&self, node: NodeId, state: &Self::State, rng: &mut dyn RngCore) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.plan_len());
        self.plan_into(node, state, rng, &mut out);
        out
    }

    /// Number of requests [`PullProtocol::plan_into`] issues, which must not
    /// depend on the state or randomness.
    fn plan_len(&self) -> usize;

    /// Computes the next state from the node's own state and the borrowed
    /// responses, where response `i` answers request `i` of the plan.
    fn pull_step(
        &self,
        node: NodeId,
        state: &Self::State,
        responses: &dyn PullResponses<Self::State>,
        ctx: &mut StepContext<'_>,
    ) -> Self::State;

    /// Output value of a node.
    fn output(&self, node: NodeId, state: &Self::State) -> u64;

    /// Samples an arbitrary representable state (arbitrary initialisation
    /// and adversarial fabrication).
    fn random_state(&self, node: NodeId, rng: &mut dyn RngCore) -> Self::State;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_answer_positionally() {
        let a = 7u64;
        let b = 9u64;
        let responses = [(NodeId::new(3), &a), (NodeId::new(1), &b)];
        let slice = &responses[..];
        let r: &dyn PullResponses<u64> = &slice;
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.target(0), NodeId::new(3));
        assert_eq!(*r.state(1), 9);
    }
}
