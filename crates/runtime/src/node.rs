//! The per-node round logic shared by the live driver and the
//! deterministic harness.
//!
//! A [`NodeCore`] owns one protocol node's evolving state plus the
//! receive-side bookkeeping: `last_seen[s]` is the most recent state
//! successfully observed from sender `s`, and is what a missed message
//! degrades to (the Byzantine model charges silence to the sender, so
//! any fallback is admissible — this one keeps honest laggards maximally
//! coherent). Fault injection is **publish-side only**: every injector
//! except `Crash` keeps reading and stepping honestly underneath, so a
//! node whose misbehaviour window closes rejoins the protocol with a
//! plausible state and the run recovers naturally.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_attack::{Move, RawState, Script};
use sc_protocol::{BitVec, Counter, MessageView, NodeId, StepContext};

use crate::mailbox::{MailboxPlane, OutputBoard};
use crate::plan::{FaultEntry, FaultKind};

/// What a node does at its publish point this round, as decided by
/// [`NodeCore::action`]. The drivers interpret the timing; the node
/// supplies the content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishAction {
    /// Publish the honest state to everyone at the slot start.
    Honest,
    /// Publish nothing this round.
    Mute,
    /// Publish to half the receivers, leave one slot torn, and die.
    Crash,
    /// Publish the honest state, but `delay_ns` after the slot start.
    Delayed { delay_ns: u64 },
    /// Publish a per-receiver fabricated face at the slot start.
    Equivocate,
    /// Observe the honest publishes at the observe point, then publish
    /// script-dictated states per receiver.
    Scripted,
}

/// Seed derivation shared by both drivers so a node draws the same
/// jitter/step randomness under the live and deterministic runs.
pub fn node_seed(run_seed: u64, node: usize) -> u64 {
    run_seed ^ (node as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Deterministic initial configuration for a run: states drawn from the
/// protocol's own sampler under `run_seed`, in node order. Exposed so
/// equivalence tests can hand the identical configuration to `sc-sim`.
pub fn initial_states<P: Counter>(algo: &P, run_seed: u64) -> Vec<P::State> {
    let mut rng = SmallRng::seed_from_u64(run_seed);
    (0..algo.n())
        .map(|i| algo.random_state(NodeId::new(i), &mut rng))
        .collect()
}

/// One node's state machine, driver-agnostic.
pub struct NodeCore<'p, P: Counter> {
    algo: &'p P,
    id: usize,
    n: usize,
    state: P::State,
    /// Most recent state successfully observed from each sender (own
    /// entry mirrors `state`); the miss fallback.
    last_seen: Vec<P::State>,
    /// Messages missed per round-read, cumulative.
    missed: u64,
    rng: SmallRng,
    fault: Option<FaultEntry>,
    /// For `Scripted`: ring of observed rounds' state vectors, oldest
    /// first, back = current round (mirrors `ScriptedAdversary`).
    ring: VecDeque<Vec<P::State>>,
    retain: usize,
    /// Index of this node within the script's fault set.
    script_g: usize,
    /// Scratch for encode/publish.
    bits: BitVec,
    payload: Vec<u64>,
}

impl<'p, P: Counter + RawState<P::State>> NodeCore<'p, P> {
    pub fn new(
        algo: &'p P,
        id: usize,
        initial: P::State,
        run_seed: u64,
        fault: Option<FaultEntry>,
    ) -> NodeCore<'p, P> {
        let n = algo.n();
        let words = (algo.state_bits() as usize).div_ceil(64).max(1);
        let (retain, script_g) = match &fault {
            Some(FaultEntry {
                kind: FaultKind::Scripted(script),
                node,
                ..
            }) => {
                let max_lag = script.max_lag();
                let g = script
                    .fault_set()
                    .iter()
                    .position(|&s| s == *node)
                    .expect("validated by FaultPlan");
                (if max_lag == 0 { 0 } else { max_lag + 1 }, g)
            }
            _ => (0, 0),
        };
        NodeCore {
            algo,
            id,
            n,
            last_seen: vec![initial.clone(); n],
            state: initial,
            missed: 0,
            rng: SmallRng::seed_from_u64(node_seed(run_seed, id)),
            fault,
            ring: VecDeque::new(),
            retain,
            script_g,
            bits: BitVec::new(),
            payload: vec![0; words],
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    /// Cumulative count of missed messages across all reads so far.
    pub fn missed(&self) -> u64 {
        self.missed
    }

    /// This node's beginning-of-round output (what an honest publish
    /// posts to the board).
    pub fn output(&self) -> u64 {
        self.algo.output(NodeId::new(self.id), &self.state)
    }

    /// Decide this round's publish behaviour. Draws the `Delayed`
    /// jitter from the node RNG, so call exactly once per round.
    pub fn action(&mut self, round: u64, period_ns: u64) -> PublishAction {
        let Some(entry) = &self.fault else {
            return PublishAction::Honest;
        };
        if !entry.active(round) {
            return PublishAction::Honest;
        }
        match &entry.kind {
            FaultKind::Crash => PublishAction::Crash,
            FaultKind::Mute => PublishAction::Mute,
            FaultKind::Delayed { jitter_permille } => {
                let max = period_ns * u64::from(*jitter_permille) / 1000;
                PublishAction::Delayed {
                    delay_ns: if max == 0 {
                        0
                    } else {
                        self.rng.random_range(0..=max)
                    },
                }
            }
            FaultKind::Equivocate => PublishAction::Equivocate,
            FaultKind::Scripted(_) => PublishAction::Scripted,
        }
    }

    fn encode_into_payload(&mut self, state: &P::State) {
        self.bits.clear();
        self.algo
            .encode_state(NodeId::new(self.id), state, &mut self.bits);
        self.payload.fill(0);
        for (dst, &src) in self.payload.iter_mut().zip(self.bits.words()) {
            *dst = src;
        }
    }

    /// Honest publish: same state to every receiver, output posted to
    /// the board tagged `round`.
    pub fn publish_honest(&mut self, plane: &MailboxPlane, board: &OutputBoard, round: u64) {
        let state = self.state.clone();
        self.encode_into_payload(&state);
        for to in 0..self.n {
            plane.slot(self.id, to).publish(round, &self.payload);
        }
        board.post(self.id, round, self.output());
    }

    /// Capture this round's honest publish (encoded payload + board
    /// output) *without* writing it to the plane — the deterministic
    /// harness uses this to defer a `Delayed` node's publish until after
    /// the round's reads while the content still reflects the
    /// beginning-of-round state.
    pub fn capture_publish(&mut self) -> (Vec<u64>, u64) {
        let state = self.state.clone();
        self.encode_into_payload(&state);
        (self.payload.clone(), self.output())
    }

    /// Deliver a previously captured publish.
    pub fn deliver_captured(
        plane: &MailboxPlane,
        board: &OutputBoard,
        from: usize,
        round: u64,
        payload: &[u64],
        output: u64,
    ) {
        for to in 0..plane.n() {
            plane.slot(from, to).publish(round, payload);
        }
        board.post(from, round, output);
    }

    /// Crash mid-publish: half the receivers get the message, the next
    /// slot is left torn (sequence odd, as if the thread died inside
    /// `publish`), the rest never hear from this node again.
    pub fn publish_crash(&mut self, plane: &MailboxPlane, round: u64) {
        let state = self.state.clone();
        self.encode_into_payload(&state);
        let half = self.n / 2;
        for to in 0..half {
            plane.slot(self.id, to).publish(round, &self.payload);
        }
        if half < self.n {
            plane.slot(self.id, half).tear();
        }
    }

    /// Equivocate: a different fabricated face per receiver parity,
    /// rotating with the round. No board post — the board entry goes
    /// stale exactly like a mute node's.
    pub fn publish_equivocate(&mut self, plane: &MailboxPlane, round: u64) {
        let base = ((round % 100) as u8) * 2;
        for to in 0..self.n {
            let face = self
                .algo
                .raw_state(NodeId::new(self.id), base + (to % 2) as u8);
            self.encode_into_payload(&face);
            plane.slot(self.id, to).publish(round, &self.payload);
        }
    }

    /// Scripted observe phase: record the current round's states as the
    /// script's donor ring sees them (own observations; a missed honest
    /// sender falls back to its last seen state). Call at the observe
    /// point, before [`NodeCore::publish_scripted`].
    pub fn observe_for_script(&mut self, plane: &MailboxPlane, round: u64) {
        if self.retain == 0 {
            return;
        }
        self.observe_round(plane, round);
        let mut snapshot = if self.ring.len() >= self.retain {
            let mut old = self.ring.pop_front().expect("ring non-empty");
            old.clear();
            old
        } else {
            Vec::with_capacity(self.n)
        };
        snapshot.extend(self.last_seen.iter().cloned());
        self.ring.push_back(snapshot);
    }

    /// Scripted publish: per receiver, resolve the script's move against
    /// the donor ring exactly as `ScriptedAdversary` does.
    pub fn publish_scripted(&mut self, plane: &MailboxPlane, round: u64) {
        let entry = self.fault.clone();
        let Some(FaultEntry {
            kind: FaultKind::Scripted(script),
            ..
        }) = &entry
        else {
            unreachable!("publish_scripted on a non-scripted node");
        };
        // If max_lag == 0 no ring is kept; echo moves still need the
        // current round's states.
        if self.retain == 0 {
            self.observe_round(plane, round);
        }
        for to in 0..self.n {
            let state = self.resolve_move(script, round, to);
            self.encode_into_payload(&state);
            plane.slot(self.id, to).publish(round, &self.payload);
        }
    }

    fn resolve_move(&self, script: &Script, round: u64, to: usize) -> P::State {
        match script.move_at(round, self.script_g, to) {
            Move::Echo(salt) => self.donor_state(script, 0, salt),
            Move::Raw(value) => self.algo.raw_state(NodeId::new(self.id), value),
            Move::Stale { lag, salt } => {
                let depth = (lag as usize).min(self.ring.len().saturating_sub(1));
                self.donor_state(script, depth, salt)
            }
        }
    }

    /// The `salt`-th honest node's state as of `depth` rounds ago (0 =
    /// current round), read from the donor ring / current observations.
    /// Honest set and rotation mirror `sc_sim::adversaries::donor_id`.
    fn donor_state(&self, script: &Script, depth: usize, salt: u8) -> P::State {
        let honest: Vec<usize> = (0..self.n)
            .filter(|i| !script.fault_set().contains(i))
            .collect();
        let donor = honest[salt as usize % honest.len().max(1)];
        if depth == 0 || self.ring.is_empty() {
            // Current round: ring back holds it when a ring is kept,
            // otherwise `last_seen` was just refreshed by the caller.
            match self.ring.back() {
                Some(current) => current[donor].clone(),
                None => self.last_seen[donor].clone(),
            }
        } else {
            self.ring[self.ring.len() - 1 - depth][donor].clone()
        }
    }

    /// Observe every sender's round-`round` slot addressed to this node,
    /// updating `last_seen` (misses keep the previous entry and count).
    fn observe_round(&mut self, plane: &MailboxPlane, round: u64) {
        let mut buf = vec![0u64; plane.words_per_msg()];
        for s in 0..self.n {
            if s == self.id {
                continue;
            }
            if plane.slot(s, self.id).observe(round, &mut buf) {
                self.bits.clear();
                for &word in &buf {
                    self.bits.push_bits(word, 64);
                }
                let mut reader = self.bits.reader();
                match self.algo.decode_state(NodeId::new(s), &mut reader) {
                    Ok(state) => {
                        self.last_seen[s] = state;
                        continue;
                    }
                    Err(_) => {
                        // Undecodable garbage == no message (charged to
                        // the sender, exactly like a torn slot).
                    }
                }
            }
            self.missed += 1;
        }
        self.last_seen[self.id] = self.state.clone();
    }

    /// Read phase + state transition: observe everyone, build the view
    /// from `last_seen` (misses already degraded), and step.
    pub fn read_and_step(&mut self, plane: &MailboxPlane, round: u64) {
        self.observe_round(plane, round);
        let refs: Vec<&P::State> = self.last_seen.iter().collect();
        let view = MessageView::from_refs(&refs, &[]);
        let mut ctx = StepContext::new(&mut self.rng);
        self.state = self.algo.step(NodeId::new(self.id), &view, &mut ctx);
    }
}
