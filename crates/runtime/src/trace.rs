//! The runtime's observability seam: tracing, metrics and the flight
//! recorder, wired through `sc-obs` when the `trace` cargo feature is on
//! and compiled to inlined no-ops when it is off.
//!
//! Both variants expose the same surface — [`RuntimeObs`] plus the
//! per-thread [`NodeTrace`] / [`MonitorTrace`] handles — so the drivers
//! call it unconditionally. Every method is observe-only: no RNG draws,
//! no control-flow effect on the protocol, which is what keeps traced
//! and untraced runtime digests bit-identical (pinned by the
//! `trace_determinism` test). Timestamps are passed as closures so the
//! disabled (or detached) path never evaluates the clock.
//!
//! With the feature on, `RuntimeObs::recording` attaches a scoped
//! `sc-obs` `Collector`, metrics `Registry`, and `FlightRecorder`
//! (re-exported under `runtime::obs`); `RuntimeObs::default()`
//! stays detached (a cheap `None` check per call site), which is how the
//! plain `run_live` / `run_deterministic` entry points run.

#[cfg(feature = "trace")]
pub use real::{MeteredReads, MonitorTrace, NodeTrace, RuntimeObs};

#[cfg(not(feature = "trace"))]
pub use noop::{MonitorTrace, NodeTrace, RuntimeObs};

/// How often a metered reader flushes its thread-local read count into
/// the shared metrics counter (power of two; one `fetch_add` per this
/// many reads keeps the ≥ 1M reads/s gate intact).
pub const READ_FLUSH_EVERY: u64 = 4096;

#[cfg(feature = "trace")]
mod real {
    use std::cell::Cell;
    use std::sync::Arc;

    use sc_obs::{
        Collector, CounterCell, Event, EventKind, EventRing, FlightConfig, FlightDump,
        FlightRecorder, MetricsSnapshot, Registry, TriggerReason,
    };

    use crate::mailbox::CounterHandle;
    use crate::monitor::{MonitorCore, Recovery};

    /// Ring capacity per producer thread: comfortably holds the event
    /// volume of any flight window at ~4 events per node per round.
    const RING_CAPACITY: usize = 4096;

    struct ObsInner {
        collector: Arc<Collector>,
        recorder: FlightRecorder,
        registry: Registry,
        misses: Arc<CounterCell>,
        publishes: Arc<CounterCell>,
        reads: Arc<CounterCell>,
    }

    /// The runtime observability bundle (`trace` feature on). Default
    /// instances are *detached* — every call is a `None` check — and
    /// [`RuntimeObs::recording`] attaches a live collector, registry and
    /// flight recorder shared by all handles of one run.
    #[derive(Clone, Default)]
    pub struct RuntimeObs {
        inner: Option<Arc<ObsInner>>,
    }

    impl RuntimeObs {
        /// An attached bundle with the given flight-recorder thresholds.
        pub fn recording(config: FlightConfig) -> RuntimeObs {
            let collector = Arc::new(Collector::new(RING_CAPACITY));
            let registry = Registry::new();
            let misses = registry.counter("runtime.deadline_misses");
            let publishes = registry.counter("runtime.publishes");
            let reads = registry.counter("runtime.reads");
            let recorder = FlightRecorder::new(Arc::clone(&collector), config);
            RuntimeObs {
                inner: Some(Arc::new(ObsInner {
                    collector,
                    recorder,
                    registry,
                    misses,
                    publishes,
                    reads,
                })),
            }
        }

        /// Whether this bundle records anything.
        pub fn is_recording(&self) -> bool {
            self.inner.is_some()
        }

        /// Tracer for node `id`'s driver thread.
        pub fn node_tracer(&self, id: usize) -> NodeTrace {
            NodeTrace {
                inner: self.inner.as_ref().map(|inner| NodeTraceInner {
                    ring: inner.collector.ring(&format!("node-{id}")),
                    misses: Arc::clone(&inner.misses),
                    publishes: Arc::clone(&inner.publishes),
                    id: id as u64,
                    last_missed: 0,
                }),
            }
        }

        /// Tracer for the monitor thread (also the watchdog driving the
        /// flight recorder).
        pub fn monitor_tracer(&self) -> MonitorTrace {
            MonitorTrace {
                inner: self.inner.as_ref().map(|inner| MonitorTraceInner {
                    ring: inner.collector.ring("monitor"),
                    obs: Arc::clone(inner),
                    events_seen: 0,
                    last_miss_total: 0,
                    unstable_streak: 0,
                    ever_stable: false,
                }),
            }
        }

        /// Folds a run's recovery measurements into the
        /// `runtime.recovery_ns` histogram.
        pub fn record_recoveries(&self, recoveries: &[Recovery]) {
            if let Some(inner) = &self.inner {
                let hist = inner.registry.histogram("runtime.recovery_ns");
                for recovery in recoveries {
                    hist.record(recovery.nanos);
                }
            }
        }

        /// Wraps a [`CounterHandle`] so reads are counted into the
        /// `runtime.reads` metric, one shared `fetch_add` per
        /// [`super::READ_FLUSH_EVERY`] reads.
        pub fn meter_reads<'a>(&self, handle: CounterHandle<'a>) -> MeteredReads<'a> {
            MeteredReads {
                handle,
                reads: self.inner.as_ref().map(|inner| Arc::clone(&inner.reads)),
                local: Cell::new(0),
            }
        }

        /// Fires the flight recorder by hand (tests, examples).
        pub fn trigger_manual(&self, round: u64) -> bool {
            match &self.inner {
                Some(inner) => inner.recorder.trigger(TriggerReason::Manual, round),
                None => false,
            }
        }

        /// Whether the flight recorder has fired.
        pub fn flight_fired(&self) -> bool {
            self.inner.as_ref().is_some_and(|i| i.recorder.fired())
        }

        /// The frozen flight dump, if the recorder fired.
        pub fn flight_dump(&self) -> Option<FlightDump> {
            self.inner.as_ref().and_then(|i| i.recorder.dump())
        }

        /// Snapshot of the run-scoped metrics registry.
        pub fn metrics(&self) -> Option<MetricsSnapshot> {
            self.inner.as_ref().map(|i| i.registry.snapshot())
        }

        /// The underlying collector (merged event access for reporting).
        pub fn collector(&self) -> Option<Arc<Collector>> {
            self.inner.as_ref().map(|i| Arc::clone(&i.collector))
        }
    }

    struct NodeTraceInner {
        ring: Arc<EventRing>,
        misses: Arc<CounterCell>,
        publishes: Arc<CounterCell>,
        id: u64,
        /// Cumulative missed-message count at the previous read, for
        /// per-round deltas.
        last_missed: u64,
    }

    /// Per-node-thread tracer. All methods are observe-only and cost a
    /// `None` check when the bundle is detached.
    pub struct NodeTrace {
        inner: Option<NodeTraceInner>,
    }

    impl NodeTrace {
        /// The node entered its round slot.
        #[inline]
        pub fn round_open(&mut self, t: impl FnOnce() -> u64, round: u64) {
            if let Some(inner) = &mut self.inner {
                inner
                    .ring
                    .push(Event::new(t(), EventKind::RoundOpen, round, inner.id, 0));
            }
        }

        /// The node published honestly (on time).
        #[inline]
        pub fn publish(
            &mut self,
            t: impl FnOnce() -> u64,
            round: u64,
            output: impl FnOnce() -> u64,
        ) {
            if let Some(inner) = &mut self.inner {
                inner.publishes.inc();
                inner.ring.push(Event::new(
                    t(),
                    EventKind::Publish,
                    round,
                    inner.id,
                    output(),
                ));
            }
        }

        /// The node published after a fault-injected delay.
        #[inline]
        pub fn publish_late(&mut self, t: impl FnOnce() -> u64, round: u64, delay_ns: u64) {
            if let Some(inner) = &mut self.inner {
                inner.publishes.inc();
                inner.ring.push(Event::new(
                    t(),
                    EventKind::PublishLate,
                    round,
                    inner.id,
                    delay_ns,
                ));
            }
        }

        /// A fault window acted on this node this round (`kind_tag` is
        /// the [`crate::FaultKind`] codec tag).
        #[inline]
        pub fn fault_active(&mut self, t: impl FnOnce() -> u64, round: u64, kind_tag: u64) {
            if let Some(inner) = &mut self.inner {
                inner.ring.push(Event::new(
                    t(),
                    EventKind::FaultActive,
                    round,
                    inner.id,
                    kind_tag,
                ));
            }
        }

        /// The node read its neighbours and stepped. `missed_cum` is the
        /// node's cumulative miss counter; the delta since the previous
        /// read is emitted as a `DeadlineMiss` event and fed to the
        /// storm watchdog.
        #[inline]
        pub fn read_step(&mut self, t: impl FnOnce() -> u64, round: u64, missed_cum: u64) {
            if let Some(inner) = &mut self.inner {
                let now = t();
                let delta = missed_cum.saturating_sub(inner.last_missed);
                inner.last_missed = missed_cum;
                if delta > 0 {
                    inner.misses.add(delta);
                    inner.ring.push(Event::new(
                        now,
                        EventKind::DeadlineMiss,
                        round,
                        inner.id,
                        delta,
                    ));
                }
                inner
                    .ring
                    .push(Event::new(now, EventKind::ReadStep, round, inner.id, 0));
            }
        }
    }

    struct MonitorTraceInner {
        ring: Arc<EventRing>,
        obs: Arc<ObsInner>,
        /// Stability events already emitted to the ring.
        events_seen: usize,
        /// `runtime.deadline_misses` total at the previous observation.
        last_miss_total: u64,
        /// Consecutive unstable observations since the last stable one.
        unstable_streak: u64,
        /// Whether the run has ever confirmed stability (the
        /// re-stabilisation watchdog only arms after that).
        ever_stable: bool,
    }

    /// The monitor thread's tracer and watchdog: emits verdict/stability
    /// events and fires the flight recorder on an over-budget burst
    /// (stability lost), a deadline-miss storm, or a failed
    /// re-stabilisation.
    pub struct MonitorTrace {
        inner: Option<MonitorTraceInner>,
    }

    impl MonitorTrace {
        /// Folds one monitor observation: call right after
        /// [`MonitorCore::observe`] with the same round and clock.
        #[inline]
        pub fn observe(&mut self, t: impl FnOnce() -> u64, round: u64, monitor: &MonitorCore) {
            let Some(inner) = &mut self.inner else {
                return;
            };
            let now = t();
            let stable = monitor.is_stable();
            inner.ring.push(Event::new(
                now,
                EventKind::Verdict,
                round,
                u64::from(stable),
                monitor.events().len() as u64,
            ));

            // Stability transitions since the last observation.
            let events = monitor.events();
            for event in &events[inner.events_seen..] {
                let kind = if event.stable {
                    EventKind::Stable
                } else {
                    EventKind::Unstable
                };
                inner
                    .ring
                    .push(Event::new(now, kind, event.round, event.since, 0));
                if event.stable {
                    inner.ever_stable = true;
                } else {
                    // Losing confirmed stability mid-run is the
                    // over-budget-burst manifestation.
                    inner
                        .obs
                        .recorder
                        .trigger(TriggerReason::StabilityLost, round);
                }
            }
            inner.events_seen = events.len();

            // Deadline-miss storm: too many misses across the cluster
            // within one observation interval.
            let config = inner.obs.recorder.config();
            let total = inner.obs.misses.get();
            if total.saturating_sub(inner.last_miss_total) >= config.miss_storm {
                inner.obs.recorder.trigger(TriggerReason::MissStorm, round);
            }
            inner.last_miss_total = total;

            // Failed re-stabilisation: armed once the run has been
            // stable, fires when the unstable streak exceeds the budget.
            if stable {
                inner.unstable_streak = 0;
            } else {
                inner.unstable_streak += 1;
                if inner.ever_stable && inner.unstable_streak > config.max_unstable_rounds {
                    inner
                        .obs
                        .recorder
                        .trigger(TriggerReason::FailedRestabilise, round);
                }
            }
        }
    }

    /// A [`CounterHandle`] wrapper counting reads into the runtime
    /// metrics. The wrapped read is still the handle's single relaxed
    /// load; the count is kept in a thread-local [`Cell`] and flushed to
    /// the shared counter every [`super::READ_FLUSH_EVERY`] reads, so
    /// the ≥ 1M reads/s read-path gate survives with the gauge active.
    pub struct MeteredReads<'a> {
        handle: CounterHandle<'a>,
        reads: Option<Arc<CounterCell>>,
        local: Cell<u64>,
    }

    impl MeteredReads<'_> {
        /// `(version, value)` — see [`CounterHandle::read`].
        #[inline]
        pub fn read(&self) -> (u64, u64) {
            if let Some(reads) = &self.reads {
                let local = self.local.get() + 1;
                if local >= super::READ_FLUSH_EVERY {
                    reads.add(local);
                    self.local.set(0);
                } else {
                    self.local.set(local);
                }
            }
            self.handle.read()
        }

        /// See [`CounterHandle::is_done`].
        #[inline]
        pub fn is_done(&self) -> bool {
            self.handle.is_done()
        }
    }

    impl Drop for MeteredReads<'_> {
        fn drop(&mut self) {
            if let Some(reads) = &self.reads {
                reads.add(self.local.get());
            }
        }
    }
}

#[cfg(not(feature = "trace"))]
mod noop {
    use crate::monitor::{MonitorCore, Recovery};

    /// The runtime observability bundle (`trace` feature off): a ZST
    /// whose every method is an inlined empty body.
    #[derive(Clone, Copy, Default)]
    pub struct RuntimeObs {}

    impl RuntimeObs {
        /// Always `false` without the `trace` feature.
        #[inline(always)]
        pub fn is_recording(&self) -> bool {
            false
        }

        /// A no-op tracer.
        #[inline(always)]
        pub fn node_tracer(&self, _id: usize) -> NodeTrace {
            NodeTrace
        }

        /// A no-op tracer.
        #[inline(always)]
        pub fn monitor_tracer(&self) -> MonitorTrace {
            MonitorTrace
        }

        /// No-op.
        #[inline(always)]
        pub fn record_recoveries(&self, _recoveries: &[Recovery]) {}
    }

    /// No-op mirror of the traced per-node tracer.
    pub struct NodeTrace;

    impl NodeTrace {
        /// No-op; the timestamp closure is never evaluated.
        #[inline(always)]
        pub fn round_open(&mut self, _t: impl FnOnce() -> u64, _round: u64) {}

        /// No-op; the closures are never evaluated.
        #[inline(always)]
        pub fn publish(
            &mut self,
            _t: impl FnOnce() -> u64,
            _round: u64,
            _output: impl FnOnce() -> u64,
        ) {
        }

        /// No-op.
        #[inline(always)]
        pub fn publish_late(&mut self, _t: impl FnOnce() -> u64, _round: u64, _delay_ns: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn fault_active(&mut self, _t: impl FnOnce() -> u64, _round: u64, _kind_tag: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn read_step(&mut self, _t: impl FnOnce() -> u64, _round: u64, _missed_cum: u64) {}
    }

    /// No-op mirror of the traced monitor tracer.
    pub struct MonitorTrace;

    impl MonitorTrace {
        /// No-op.
        #[inline(always)]
        pub fn observe(&mut self, _t: impl FnOnce() -> u64, _round: u64, _monitor: &MonitorCore) {}
    }
}
