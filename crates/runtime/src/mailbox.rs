//! Lock-free single-writer mailbox plane and the atomic read path.
//!
//! One [`Slot`] per (sender, receiver) pair. Each slot is written by
//! exactly one thread (the sender) and read by exactly one other (the
//! receiver), using a seqlock: the writer bumps the sequence word to an
//! odd value, writes the payload words and round tag with relaxed
//! stores, then publishes with a release store of the next even value.
//! The reader loads the sequence (acquire), copies the payload
//! (relaxed), fences (acquire), and re-checks the sequence: odd or
//! changed means the read raced a write and is discarded as a *miss* —
//! never retried more than a couple of times, never blocked on. A miss
//! degrades to "no message received", which the Byzantine model charges
//! to the sender.
//!
//! The publish/observe discipline is validated exhaustively by the
//! `sc-model` interleaving checker in `tests/mailbox_model.rs`.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};

/// Sequenced message slot: single writer, single reader.
pub struct Slot {
    seq: AtomicU64,
    round: AtomicU64,
    words: Box<[AtomicU64]>,
}

impl Slot {
    fn new(words_per_msg: usize) -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            round: AtomicU64::new(0),
            words: (0..words_per_msg).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Publish `payload` tagged with `round`. Single-writer: only the
    /// owning sender thread may call this.
    pub fn publish(&self, round: u64, payload: &[u64]) {
        debug_assert_eq!(payload.len(), self.words.len());
        let seq = self.seq.load(Ordering::Relaxed);
        self.seq.store(seq + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (slot, &word) in self.words.iter().zip(payload) {
            slot.store(word, Ordering::Relaxed);
        }
        self.round.store(round, Ordering::Relaxed);
        self.seq.store(seq + 2, Ordering::Release);
    }

    /// Leave the slot mid-write (sequence odd) — used by the `Crash`
    /// injector to model a thread dying inside `publish`. Any subsequent
    /// observe of this slot misses forever.
    pub fn tear(&self) {
        let seq = self.seq.load(Ordering::Relaxed);
        self.seq.store(seq + 1, Ordering::Relaxed);
        fence(Ordering::Release);
    }

    /// Try to read the message tagged `expected_round` into `out`.
    /// Returns `true` on a clean, round-matching read; `false` is a
    /// miss (empty slot, torn write, stale or future round). Bounded
    /// retries keep this wait-free in practice and lock-free always.
    pub fn observe(&self, expected_round: u64, out: &mut [u64]) -> bool {
        debug_assert_eq!(out.len(), self.words.len());
        for _ in 0..3 {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                return false;
            }
            for (word, slot) in out.iter_mut().zip(self.words.iter()) {
                *word = slot.load(Ordering::Relaxed);
            }
            let round = self.round.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let s2 = self.seq.load(Ordering::Relaxed);
            if s1 == s2 {
                return round == expected_round;
            }
            // Torn: the writer republished mid-copy. Retry.
        }
        false
    }
}

/// The n × n plane of slots. `slot(sender, receiver)` is written only by
/// `sender`'s thread and read only by `receiver`'s.
pub struct MailboxPlane {
    n: usize,
    words_per_msg: usize,
    slots: Vec<Slot>,
}

impl MailboxPlane {
    pub fn new(n: usize, state_bits: u32) -> MailboxPlane {
        let words_per_msg = (state_bits as usize).div_ceil(64).max(1);
        MailboxPlane {
            n,
            words_per_msg,
            slots: (0..n * n).map(|_| Slot::new(words_per_msg)).collect(),
        }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Payload width every publish/observe must use.
    pub fn words_per_msg(&self) -> usize {
        self.words_per_msg
    }

    pub fn slot(&self, sender: usize, receiver: usize) -> &Slot {
        &self.slots[sender * self.n + receiver]
    }
}

/// Per-node output board the monitor samples: one word packing
/// `(round + 1) << 24 | output`. Zero means "never published".
pub struct OutputBoard {
    cells: Vec<AtomicU64>,
}

/// Bits reserved for the output value in board/snapshot packing; the
/// counter modulus must fit (`modulus <= OUTPUT_LIMIT`).
pub const OUTPUT_BITS: u32 = 24;
/// Exclusive upper bound on packable output values.
pub const OUTPUT_LIMIT: u64 = 1 << OUTPUT_BITS;

impl OutputBoard {
    pub fn new(n: usize) -> OutputBoard {
        OutputBoard {
            cells: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Post node `node`'s beginning-of-round-`round` output.
    pub fn post(&self, node: usize, round: u64, output: u64) {
        debug_assert!(output < OUTPUT_LIMIT);
        self.cells[node].store(((round + 1) << OUTPUT_BITS) | output, Ordering::Release);
    }

    /// Latest `(round, output)` posted by `node`, if any.
    pub fn sample(&self, node: usize) -> Option<(u64, u64)> {
        let word = self.cells[node].load(Ordering::Acquire);
        if word == 0 {
            return None;
        }
        Some(((word >> OUTPUT_BITS) - 1, word & (OUTPUT_LIMIT - 1)))
    }
}

/// Versioned snapshot of the agreed counter value: a single word packing
/// `(version << 24) | value` where `version = round + 1`. The monitor
/// writes it only while the run is stable; readers take one relaxed load.
pub struct SnapshotCell {
    word: AtomicU64,
}

impl SnapshotCell {
    pub fn new() -> SnapshotCell {
        SnapshotCell {
            word: AtomicU64::new(0),
        }
    }

    pub fn store(&self, round: u64, value: u64) {
        debug_assert!(value < OUTPUT_LIMIT);
        self.word
            .store(((round + 1) << OUTPUT_BITS) | value, Ordering::Release);
    }

    /// `(version, value)`; version 0 means "not yet stable".
    pub fn load(&self) -> (u64, u64) {
        let word = self.word.load(Ordering::Relaxed);
        (word >> OUTPUT_BITS, word & (OUTPUT_LIMIT - 1))
    }
}

impl Default for SnapshotCell {
    fn default() -> Self {
        SnapshotCell::new()
    }
}

/// External read handle served to reader threads while a live run is in
/// flight. `read()` is a single relaxed atomic load — lock-free and
/// wait-free regardless of what the node threads (including crashed
/// ones) are doing.
#[derive(Clone, Copy)]
pub struct CounterHandle<'a> {
    cell: &'a SnapshotCell,
    done: &'a AtomicBool,
}

impl<'a> CounterHandle<'a> {
    pub(crate) fn new(cell: &'a SnapshotCell, done: &'a AtomicBool) -> CounterHandle<'a> {
        CounterHandle { cell, done }
    }

    /// `(version, value)` of the latest stable counter snapshot.
    /// Version 0 means the run has not stabilised yet; versions are
    /// strictly monotone thereafter.
    #[inline]
    pub fn read(&self) -> (u64, u64) {
        self.cell.load()
    }

    /// Whether the run has finished (readers should drain and exit).
    #[inline]
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}
