//! The wall-clock driver: n OS threads run the protocol for real.
//!
//! One thread per node self-clocks through the round timetable, a
//! monitor thread samples the output board and maintains the read-path
//! snapshot, and the caller's `serve` closure runs concurrently with a
//! [`CounterHandle`] — the shape of an external service reading the
//! converged counter under load. Nothing ever blocks on a peer: slow or
//! dead nodes surface as missed messages, which the protocol absorbs as
//! in-budget faults.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use sc_attack::RawState;
use sc_protocol::Counter;

use crate::clock::{RoundClock, RoundSchedule, WallClock};
use crate::mailbox::{CounterHandle, MailboxPlane, OutputBoard, SnapshotCell, OUTPUT_LIMIT};
use crate::monitor::{BoardSample, MonitorCore, Recovery, StabilityEvent};
use crate::node::{initial_states, NodeCore, PublishAction};
use crate::plan::FaultPlan;
use crate::trace::{MonitorTrace, NodeTrace, RuntimeObs};
use crate::ParamError;

/// Parameters of one runtime run, shared by the live driver and the
/// deterministic harness.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Round period in nanoseconds (the live run's real-time budget per
    /// round; the harness's virtual timetable).
    pub period_ns: u64,
    /// Number of rounds to run.
    pub horizon: u64,
    /// Seed for initial states, per-node RNGs, and the harness scheduler.
    pub seed: u64,
    /// Consecutive good observations before the monitor declares
    /// stability; default [`MonitorCore::default_confirm`].
    pub confirm: Option<u64>,
    /// Board reports that must agree before a value is trusted; default
    /// `n − f` where `f` is the plan's fault count.
    pub quorum: Option<usize>,
    /// The injection schedule.
    pub plan: FaultPlan,
}

impl RuntimeConfig {
    /// An all-honest run.
    pub fn honest(n: usize, period_ns: u64, horizon: u64, seed: u64) -> RuntimeConfig {
        RuntimeConfig {
            period_ns,
            horizon,
            seed,
            confirm: None,
            quorum: None,
            plan: FaultPlan::honest(n),
        }
    }

    pub(crate) fn resolve<P: Counter>(
        &self,
        algo: &P,
    ) -> Result<(RoundSchedule, usize, u64), ParamError> {
        let n = algo.n();
        if self.plan.n() != n {
            return Err(ParamError::constraint(format!(
                "fault plan is for n = {} but the protocol has n = {n}",
                self.plan.n()
            )));
        }
        if self.period_ns == 0 || self.horizon == 0 {
            return Err(ParamError::constraint(
                "period_ns and horizon must be positive",
            ));
        }
        if algo.modulus() >= OUTPUT_LIMIT {
            return Err(ParamError::constraint(format!(
                "modulus {} does not fit the packed snapshot ({OUTPUT_LIMIT} max)",
                algo.modulus()
            )));
        }
        let quorum = self.quorum.unwrap_or(n - self.plan.fault_count());
        if quorum == 0 || quorum > n || 2 * quorum <= n {
            return Err(ParamError::constraint(format!(
                "quorum {quorum} is not a majority of n = {n}"
            )));
        }
        let confirm = self
            .confirm
            .unwrap_or_else(|| MonitorCore::default_confirm(algo.modulus()));
        Ok((RoundSchedule::new(self.period_ns), quorum, confirm))
    }
}

/// Everything a run reports back.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Rounds the timetable covered.
    pub rounds: u64,
    /// First round of the first confirmed stable period.
    pub first_stable_round: Option<u64>,
    /// Stability transitions in observation order.
    pub events: Vec<StabilityEvent>,
    /// Re-stabilisation measurements per bounded disruption burst.
    pub recoveries: Vec<Recovery>,
    /// Cumulative missed messages per node (a crashed node stops
    /// counting when it dies).
    pub missed: Vec<u64>,
    /// FNV-1a digest of the monitor's agreed-value stream —
    /// bit-reproducibility witness under the deterministic harness.
    pub digest: u64,
    /// Total run time in (wall or virtual) nanoseconds.
    pub wall_nanos: u64,
    /// Per observation round: the board sample the monitor saw.
    pub trace: Vec<(u64, BoardSample)>,
}

impl RunReport {
    /// The honest nodes' posted outputs at observation round `r`, if
    /// every node outside `faulty` posted a round-`r` report.
    pub fn honest_row(&self, r: usize, faulty: &[usize]) -> Option<Vec<u64>> {
        let (round, sample) = &self.trace[r];
        let mut row = Vec::new();
        for (node, report) in sample.iter().enumerate() {
            if faulty.contains(&node) {
                continue;
            }
            match report {
                Some((tag, value)) if tag == round => row.push(*value),
                _ => return None,
            }
        }
        Some(row)
    }
}

/// Run the protocol live and serve reads while it runs.
///
/// `serve` receives a [`CounterHandle`] on the calling thread while the
/// node and monitor threads run; it conventionally loops until
/// [`CounterHandle::is_done`]. Its return value is passed through.
pub fn run_live<P, F, R>(
    algo: &P,
    config: &RuntimeConfig,
    serve: F,
) -> Result<(RunReport, R), ParamError>
where
    P: Counter + RawState<P::State> + Sync,
    P::State: Send,
    F: FnOnce(CounterHandle<'_>) -> R,
{
    run_live_obs(algo, config, &RuntimeObs::default(), serve)
}

/// [`run_live`] with an observability bundle attached. With the `trace`
/// feature off (or a detached default bundle) every instrumentation call
/// compiles to (or short-circuits at) a no-op; instrumentation is
/// observe-only either way, so the report is identical.
pub fn run_live_obs<P, F, R>(
    algo: &P,
    config: &RuntimeConfig,
    obs: &RuntimeObs,
    serve: F,
) -> Result<(RunReport, R), ParamError>
where
    P: Counter + RawState<P::State> + Sync,
    P::State: Send,
    F: FnOnce(CounterHandle<'_>) -> R,
{
    let (sched, quorum, confirm) = config.resolve(algo)?;
    let n = algo.n();
    let horizon = config.horizon;
    let plane = MailboxPlane::new(n, algo.state_bits());
    let board = OutputBoard::new(n);
    let snapshot = SnapshotCell::new();
    let done = AtomicBool::new(false);
    let states = initial_states(algo, config.seed);

    let mut cores: Vec<NodeCore<'_, P>> = states
        .into_iter()
        .enumerate()
        .map(|(id, state)| {
            NodeCore::new(
                algo,
                id,
                state,
                config.seed,
                config.plan.entry_for(id).cloned(),
            )
        })
        .collect();
    cores.reverse(); // pop() below hands out id 0 first

    let clock = WallClock::new(Instant::now());
    let (report, served) = std::thread::scope(|scope| {
        let mut node_handles = Vec::with_capacity(n);
        for id in 0..n {
            let mut core = cores.pop().expect("one core per node");
            debug_assert_eq!(core.id(), id);
            let plane = &plane;
            let board = &board;
            let tracer = obs.node_tracer(id);
            node_handles.push(scope.spawn(move || {
                run_node_thread(&mut core, plane, board, &clock, &sched, horizon, tracer);
                core.missed()
            }));
        }
        let monitor_handle = {
            let plane_n = n;
            let board = &board;
            let snapshot = &snapshot;
            let done = &done;
            let modulus = algo.modulus();
            let tracer = obs.monitor_tracer();
            scope.spawn(move || {
                let result = run_monitor_thread(
                    plane_n, board, snapshot, &clock, &sched, horizon, quorum, modulus, confirm,
                    tracer,
                );
                done.store(true, Ordering::Release);
                result
            })
        };

        let served = serve(CounterHandle::new(&snapshot, &done));

        let missed: Vec<u64> = node_handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect();
        let (events, digest, trace) = monitor_handle.join().expect("monitor thread panicked");

        let burst_ends: Vec<u64> = config
            .plan
            .entries()
            .iter()
            .filter_map(|e| e.until_round)
            .collect();
        let recoveries = MonitorCore::recoveries(&events, &burst_ends, |r| sched.slot_start(r));
        obs.record_recoveries(&recoveries);
        let report = RunReport {
            rounds: horizon,
            first_stable_round: MonitorCore::first_stable_round(&events),
            events,
            recoveries,
            missed,
            digest,
            wall_nanos: clock.now(),
            trace,
        };
        (report, served)
    });
    Ok((report, served))
}

/// One node's self-clocked round loop. Returns when the horizon is
/// reached or the node crashes.
#[allow(clippy::too_many_arguments)]
fn run_node_thread<P>(
    core: &mut NodeCore<'_, P>,
    plane: &MailboxPlane,
    board: &OutputBoard,
    clock: &WallClock,
    sched: &RoundSchedule,
    horizon: u64,
    mut tracer: NodeTrace,
) where
    P: Counter + RawState<P::State>,
{
    let mut round = 0u64;
    while round < horizon {
        clock.wait_until(sched.slot_start(round));
        // Oversleeping whole windows (scheduler stall, paused VM) means
        // those rounds are simply missed: fast-forward — the receivers
        // already degraded us to "no message", never waited.
        let current = sched.round_of(clock.now());
        if current > round {
            round = current;
            if round >= horizon {
                break;
            }
        }
        tracer.round_open(|| clock.now(), round);
        match core.action(round, sched.period_ns()) {
            PublishAction::Honest => {
                core.publish_honest(plane, board, round);
                tracer.publish(|| clock.now(), round, || core.output());
            }
            PublishAction::Mute => tracer.fault_active(|| clock.now(), round, 1),
            PublishAction::Crash => {
                core.publish_crash(plane, round);
                tracer.fault_active(|| clock.now(), round, 0);
                return; // the thread dies mid-round, for real
            }
            PublishAction::Delayed { delay_ns } => {
                clock.wait_until(sched.slot_start(round) + delay_ns);
                core.publish_honest(plane, board, round);
                tracer.publish_late(|| clock.now(), round, delay_ns);
            }
            PublishAction::Equivocate => {
                core.publish_equivocate(plane, round);
                tracer.fault_active(|| clock.now(), round, 3);
            }
            PublishAction::Scripted => {
                clock.wait_until(sched.obs_point(round));
                core.observe_for_script(plane, round);
                core.publish_scripted(plane, round);
                tracer.fault_active(|| clock.now(), round, 4);
            }
        }
        clock.wait_until(sched.read_point(round));
        core.read_and_step(plane, round);
        tracer.read_step(|| clock.now(), round, core.missed());
        round += 1;
    }
}

/// The monitor thread: one board sample per round at the sample point.
#[allow(clippy::too_many_arguments)]
fn run_monitor_thread(
    n: usize,
    board: &OutputBoard,
    snapshot: &SnapshotCell,
    clock: &WallClock,
    sched: &RoundSchedule,
    horizon: u64,
    quorum: usize,
    modulus: u64,
    confirm: u64,
    mut tracer: MonitorTrace,
) -> (Vec<StabilityEvent>, u64, Vec<(u64, BoardSample)>) {
    let mut monitor = MonitorCore::new(quorum, modulus, confirm);
    let mut trace = Vec::with_capacity(horizon as usize);
    let mut round = 0u64;
    while round < horizon {
        clock.wait_until(sched.sample_point(round));
        let now = clock.now();
        // An overslept monitor skips the windows it missed rather than
        // misreading stale board tags as disagreement.
        let current = sched.round_of(now);
        if current > round {
            round = current;
            if round >= horizon {
                break;
            }
            continue;
        }
        let sample: BoardSample = (0..n).map(|i| board.sample(i)).collect();
        monitor.observe(round, &sample, now, snapshot);
        tracer.observe(|| clock.now(), round, &monitor);
        trace.push((round, sample));
        round += 1;
    }
    let digest = monitor.digest();
    (monitor.into_events(), digest, trace)
}
