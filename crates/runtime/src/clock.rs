//! Round clocks: the wall clock the live driver runs on and the virtual
//! clock the deterministic harness substitutes for it.

use std::cell::Cell;
use std::time::{Duration, Instant};

/// A monotone nanosecond clock a node paces its round loop against.
/// Implemented by [`WallClock`] (real time) and [`VirtualClock`]
/// (deterministic harness) so node logic is driver-agnostic.
pub trait RoundClock {
    /// Nanoseconds since the run epoch.
    fn now(&self) -> u64;
    /// Return no earlier than `deadline_ns`. May return late (the round
    /// loop fast-forwards past missed rounds); must never return early.
    fn wait_until(&self, deadline_ns: u64);
}

/// Real time, anchored at an epoch shared by all threads of a run.
#[derive(Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    pub fn new(epoch: Instant) -> WallClock {
        WallClock { epoch }
    }
}

impl RoundClock for WallClock {
    fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn wait_until(&self, deadline_ns: u64) {
        // Sleep for the bulk of the wait, spin the last stretch: round
        // periods are milliseconds, OS sleep granularity is tens of
        // microseconds, and a node that oversleeps its publish point is
        // charged as faulty for the round — worth a short spin to avoid.
        const SPIN_NS: u64 = 100_000;
        loop {
            let now = self.now();
            if now >= deadline_ns {
                return;
            }
            let left = deadline_ns - now;
            if left > SPIN_NS {
                std::thread::sleep(Duration::from_nanos(left - SPIN_NS));
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

/// Virtual time for the deterministic harness: `wait_until` jumps the
/// clock forward instantly. Single-threaded by construction.
pub struct VirtualClock {
    now: Cell<u64>,
}

impl VirtualClock {
    pub fn new() -> VirtualClock {
        VirtualClock { now: Cell::new(0) }
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new()
    }
}

impl RoundClock for VirtualClock {
    fn now(&self) -> u64 {
        self.now.get()
    }

    fn wait_until(&self, deadline_ns: u64) {
        self.now.set(self.now.get().max(deadline_ns));
    }
}

/// The shared timetable of a run: round `r` owns the wall window
/// `[r·period, (r+1)·period)`, with fixed intra-round offsets for the
/// scripted-injector observe point, the receivers' read point, and the
/// monitor's sample point.
#[derive(Clone, Copy, Debug)]
pub struct RoundSchedule {
    period_ns: u64,
    /// Warm-up gap before round 0's window opens, absorbing thread
    /// spawn latency in the live driver.
    offset_ns: u64,
    obs_permille: u64,
    read_permille: u64,
    sample_permille: u64,
}

impl RoundSchedule {
    /// Default offsets: observe at 25% (scripted injectors read the
    /// honest publishes that landed at 0%), read at 62.5% (the publish
    /// deadline — anything later is a miss), monitor sample at 80%
    /// (after outputs for the round are on the board).
    pub fn new(period_ns: u64) -> RoundSchedule {
        RoundSchedule {
            period_ns,
            offset_ns: period_ns,
            obs_permille: 250,
            read_permille: 625,
            sample_permille: 800,
        }
    }

    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }

    /// Start of round `r`'s window — the honest publish point.
    pub fn slot_start(&self, round: u64) -> u64 {
        self.offset_ns + round * self.period_ns
    }

    /// When observing injectors (scripted/equivocate) read the honest
    /// states they fabricate from.
    pub fn obs_point(&self, round: u64) -> u64 {
        self.slot_start(round) + self.period_ns * self.obs_permille / 1000
    }

    /// The read point = publish deadline. A message not observable here
    /// was published too late and counts as missed.
    pub fn read_point(&self, round: u64) -> u64 {
        self.slot_start(round) + self.period_ns * self.read_permille / 1000
    }

    /// When the monitor samples the output board for round `r`.
    pub fn sample_point(&self, round: u64) -> u64 {
        self.slot_start(round) + self.period_ns * self.sample_permille / 1000
    }

    /// The round whose window contains instant `now_ns` (0 during the
    /// warm-up gap) — how an overslept node fast-forwards.
    pub fn round_of(&self, now_ns: u64) -> u64 {
        now_ns.saturating_sub(self.offset_ns) / self.period_ns
    }

    /// Fraction of the period (permille) between publish and read
    /// points — the headroom a `Delayed` injector races against.
    pub fn read_permille(&self) -> u64 {
        self.read_permille
    }
}
