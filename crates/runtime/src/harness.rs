//! The deterministic harness: the same node logic, mailbox plane, and
//! monitor as the live driver, driven single-threaded on a virtual
//! clock with a seeded scheduler — every live scenario replayed
//! bit-reproducibly in CI.
//!
//! Per round the harness executes the live timetable's phases in order:
//! on-time publishes (honest, equivocate, crash — in a seeded shuffle of
//! node order), then the observing injectors (scripted) at the observe
//! point, then every surviving node's read + step at the read point,
//! then the monitor's board sample, and finally any `Delayed` publishes
//! whose jitter pushed them past the read deadline — landing after the
//! reads and the sample, exactly as a late publish does live. Two runs
//! with the same config produce identical reports, digests included.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_attack::RawState;
use sc_protocol::Counter;

use crate::clock::{RoundClock, VirtualClock};
use crate::live::{RunReport, RuntimeConfig};
use crate::mailbox::{MailboxPlane, OutputBoard, SnapshotCell};
use crate::monitor::{BoardSample, MonitorCore};
use crate::node::{initial_states, NodeCore, PublishAction};
use crate::trace::{NodeTrace, RuntimeObs};
use crate::ParamError;

/// Salt separating the scheduler's RNG stream from the nodes'.
const SCHED_SALT: u64 = 0x5eed_0dd5_ca1e_d0e5;

/// Run `config` deterministically. Same config ⇒ bit-identical report.
pub fn run_deterministic<P>(algo: &P, config: &RuntimeConfig) -> Result<RunReport, ParamError>
where
    P: Counter + RawState<P::State>,
{
    run_deterministic_obs(algo, config, &RuntimeObs::default())
}

/// [`run_deterministic`] with an observability bundle attached.
///
/// Instrumentation is observe-only: tracers read protocol state, never
/// feed it, and timestamps come from the same virtual clock the phases
/// already advance. The report — digest included — is therefore
/// bit-identical whether `obs` is recording, detached, or compiled out.
pub fn run_deterministic_obs<P>(
    algo: &P,
    config: &RuntimeConfig,
    obs: &RuntimeObs,
) -> Result<RunReport, ParamError>
where
    P: Counter + RawState<P::State>,
{
    let (sched, quorum, confirm) = config.resolve(algo)?;
    let n = algo.n();
    let horizon = config.horizon;
    let plane = MailboxPlane::new(n, algo.state_bits());
    let board = OutputBoard::new(n);
    let snapshot = SnapshotCell::new();
    let clock = VirtualClock::new();
    let mut sched_rng = SmallRng::seed_from_u64(config.seed ^ SCHED_SALT);

    let mut cores: Vec<Option<NodeCore<'_, P>>> = initial_states(algo, config.seed)
        .into_iter()
        .enumerate()
        .map(|(id, state)| {
            Some(NodeCore::new(
                algo,
                id,
                state,
                config.seed,
                config.plan.entry_for(id).cloned(),
            ))
        })
        .collect();
    let mut crashed_missed: Vec<Option<u64>> = vec![None; n];
    let mut tracers: Vec<NodeTrace> = (0..n).map(|id| obs.node_tracer(id)).collect();
    let mut mtrace = obs.monitor_tracer();

    let mut monitor = MonitorCore::new(quorum, algo.modulus(), confirm);
    let mut trace = Vec::with_capacity(horizon as usize);
    let read_offset_ns = sched.read_point(0) - sched.slot_start(0);

    for round in 0..horizon {
        clock.wait_until(sched.slot_start(round));

        // Phase 1: on-time publishes, seeded-shuffled node order.
        let mut order: Vec<usize> = (0..n).filter(|&i| cores[i].is_some()).collect();
        shuffle(&mut order, &mut sched_rng);
        let mut observers: Vec<usize> = Vec::new();
        let mut late: Vec<(usize, u64, Vec<u64>, u64)> = Vec::new();
        for &id in &order {
            let core = cores[id].as_mut().expect("alive");
            let tracer = &mut tracers[id];
            tracer.round_open(|| clock.now(), round);
            match core.action(round, sched.period_ns()) {
                PublishAction::Honest => {
                    core.publish_honest(&plane, &board, round);
                    tracer.publish(|| clock.now(), round, || core.output());
                }
                PublishAction::Mute => tracer.fault_active(|| clock.now(), round, 1),
                PublishAction::Crash => {
                    core.publish_crash(&plane, round);
                    tracer.fault_active(|| clock.now(), round, 0);
                    crashed_missed[id] = Some(core.missed());
                    cores[id] = None; // dead for the rest of the run
                }
                PublishAction::Delayed { delay_ns } => {
                    tracer.fault_active(|| clock.now(), round, 2);
                    if delay_ns <= read_offset_ns {
                        core.publish_honest(&plane, &board, round);
                        tracer.publish_late(|| clock.now(), round, delay_ns);
                    } else {
                        let (payload, output) = core.capture_publish();
                        late.push((id, delay_ns, payload, output));
                    }
                }
                PublishAction::Equivocate => {
                    core.publish_equivocate(&plane, round);
                    tracer.fault_active(|| clock.now(), round, 3);
                }
                PublishAction::Scripted => observers.push(id),
            }
        }

        // Phase 2: observing injectors, ascending id.
        observers.sort_unstable();
        clock.wait_until(sched.obs_point(round));
        for id in observers {
            let core = cores[id].as_mut().expect("alive");
            core.observe_for_script(&plane, round);
            core.publish_scripted(&plane, round);
            tracers[id].fault_active(|| clock.now(), round, 4);
        }

        // Phase 3: reads + transitions. Plane content is frozen for the
        // round, so per-node order is immaterial; ascending for clarity.
        clock.wait_until(sched.read_point(round));
        for id in 0..n {
            if let Some(core) = cores[id].as_mut() {
                core.read_and_step(&plane, round);
                tracers[id].read_step(|| clock.now(), round, core.missed());
            }
        }

        // Phase 4: monitor sample.
        clock.wait_until(sched.sample_point(round));
        let sample: BoardSample = (0..n).map(|i| board.sample(i)).collect();
        monitor.observe(round, &sample, clock.now(), &snapshot);
        mtrace.observe(|| clock.now(), round, &monitor);
        trace.push((round, sample));

        // Phase 5: deadline-missing publishes land last — after every
        // read and the monitor's sample, like a live straggler.
        late.sort_unstable_by_key(|&(id, delay_ns, ..)| (delay_ns, id));
        for (id, delay_ns, payload, output) in late {
            clock.wait_until(sched.slot_start(round) + delay_ns);
            NodeCore::<P>::deliver_captured(&plane, &board, id, round, &payload, output);
            tracers[id].publish_late(|| clock.now(), round, delay_ns);
        }
    }

    let missed: Vec<u64> = (0..n)
        .map(|id| match &cores[id] {
            Some(core) => core.missed(),
            None => crashed_missed[id].unwrap_or(0),
        })
        .collect();
    let burst_ends: Vec<u64> = config
        .plan
        .entries()
        .iter()
        .filter_map(|e| e.until_round)
        .collect();
    let digest = monitor.digest();
    let events = monitor.into_events();
    let recoveries = MonitorCore::recoveries(&events, &burst_ends, |r| sched.slot_start(r));
    obs.record_recoveries(&recoveries);
    Ok(RunReport {
        rounds: horizon,
        first_stable_round: MonitorCore::first_stable_round(&events),
        events,
        recoveries,
        missed,
        digest,
        wall_nanos: clock.now(),
        trace,
    })
}

/// Fisher–Yates over the shim RNG (the shim has no `shuffle`).
fn shuffle(items: &mut [usize], rng: &mut SmallRng) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}
