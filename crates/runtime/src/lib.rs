//! `sc-runtime` — live fault-injected counting runtime.
//!
//! Everything elsewhere in this workspace *simulates* synchronous rounds;
//! this crate runs them for real: `n` OS threads each execute a
//! [`sc_protocol::Counter`] node, exchanging states through a lock-free
//! single-writer **mailbox plane** ([`mailbox`]) and pacing themselves
//! with a **self-clocked round loop** ([`clock`]). Up to `f` nodes are
//! wrapped in *actual* misbehaviour by the fault-injection layer
//! ([`plan`]): crashed, mute, delayed, equivocating, or replaying an
//! `sc-attack` [`Script`](sc_attack::Script) witness live.
//!
//! ## Deadline semantics and the Byzantine model
//!
//! Round `r` owns the wall-clock window `[r·period, (r+1)·period)`. A
//! node publishes its round-`r` state at the start of the window and
//! reads everyone else's at a fixed offset inside it. A message that is
//! not (yet) present — because the sender is slow, crashed, mute, or
//! published a torn slot — degrades to "no message received": the
//! receiver falls back to the last state it saw from that sender. That
//! is admissible because the paper's Byzantine model already charges any
//! misbehaviour, including silence, to the fault budget: a sender that
//! misses its deadline is *treated as faulty for that round*, and a
//! self-stabilising counter tolerates any transient corruption once the
//! faulty set stays within `f`. Slow nodes therefore cause graceful
//! degradation, never deadlock — no barrier ever blocks on a peer.
//!
//! ## Drivers
//!
//! [`live::run_live`] is the wall-clock driver: real threads, real
//! sleeps, a watchdog/recovery monitor timestamping stabilisation, and a
//! [`CounterHandle`] read path serving the
//! converged counter from a versioned atomic snapshot.
//! [`harness::run_deterministic`] drives the *same* node logic with a
//! virtual clock and a seeded scheduler, so every live scenario also
//! runs bit-reproducibly in CI.

pub mod clock;
pub mod harness;
pub mod live;
pub mod mailbox;
pub mod monitor;
pub mod node;
pub mod plan;
pub mod trace;

pub use clock::{RoundClock, RoundSchedule, VirtualClock, WallClock};
pub use harness::{run_deterministic, run_deterministic_obs};
pub use live::{run_live, run_live_obs, RunReport, RuntimeConfig};
pub use mailbox::{CounterHandle, MailboxPlane, OutputBoard, SnapshotCell};
pub use monitor::{MonitorCore, Recovery, StabilityEvent};
pub use node::{initial_states, NodeCore, PublishAction};
pub use plan::{FaultEntry, FaultKind, FaultPlan};
pub use trace::{MonitorTrace, NodeTrace, RuntimeObs};

/// Re-export of the observability substrate (only with the `trace`
/// feature), so downstream code can name `sc_runtime::obs::FlightConfig`
/// etc. without depending on `sc-obs` directly.
#[cfg(feature = "trace")]
pub use sc_obs as obs;
#[cfg(feature = "trace")]
pub use trace::MeteredReads;

use std::fmt;

/// Parameter/validation error for runtime construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError {
    message: String,
}

impl ParamError {
    pub fn constraint(message: impl Into<String>) -> Self {
        ParamError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime parameter error: {}", self.message)
    }
}

impl std::error::Error for ParamError {}
