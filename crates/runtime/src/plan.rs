//! Fault-injection schedules: which nodes misbehave, how, and when.
//!
//! A [`FaultPlan`] is data, not code — losslessly serialisable through the
//! workspace bit codec so a live fault schedule can be stored, shipped,
//! and replayed (including under the deterministic harness, which is how
//! CI reproduces every live scenario). Each [`FaultEntry`] wraps one node
//! in a [`FaultKind`] over a round window `[from_round, until_round)`;
//! outside the window the node behaves honestly, which is what makes
//! disruption *bursts* — and therefore wall-clock recovery measurement —
//! expressible.

use sc_attack::Script;
use sc_protocol::{BitReader, BitVec, CodecError};

/// How a wrapped node misbehaves while its window is active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The node thread exits mid-round, leaving a partial publish (some
    /// receivers' slots written, one left torn). It never comes back.
    Crash,
    /// Publishes nothing; keeps reading and stepping honestly so it can
    /// rejoin cleanly when the window closes.
    Mute,
    /// Publishes late by a per-round pseudo-random fraction of the round
    /// period, racing the receivers' read deadline. `jitter_permille` is
    /// the maximum delay in thousandths of the round period (may exceed
    /// 1000 to guarantee misses).
    Delayed { jitter_permille: u32 },
    /// Publishes a different fabricated state to each receiver (two
    /// alternating faces keyed by receiver parity and round).
    Equivocate,
    /// Replays an `sc-attack` [`Script`] witness live: each round the
    /// node observes the honest nodes' current states, then publishes to
    /// each receiver whatever the script's move table dictates
    /// (echo/raw/stale), exactly as `ScriptedAdversary` would fabricate.
    Scripted(Script),
}

impl FaultKind {
    fn tag(&self) -> u64 {
        match self {
            FaultKind::Crash => 0,
            FaultKind::Mute => 1,
            FaultKind::Delayed { .. } => 2,
            FaultKind::Equivocate => 3,
            FaultKind::Scripted(_) => 4,
        }
    }
}

/// One node's misbehaviour window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEntry {
    /// Node being wrapped.
    pub node: usize,
    /// First round (inclusive) of misbehaviour.
    pub from_round: u64,
    /// First round the node is honest again; `None` = misbehaves forever.
    pub until_round: Option<u64>,
    /// The misbehaviour.
    pub kind: FaultKind,
}

impl FaultEntry {
    /// Whether this entry's misbehaviour is active in round `round`.
    pub fn active(&self, round: u64) -> bool {
        round >= self.from_round && self.until_round.is_none_or(|u| round < u)
    }
}

/// A complete injection schedule for an `n`-node run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    n: usize,
    entries: Vec<FaultEntry>,
}

const MAX_JITTER_PERMILLE: u32 = (1 << 20) - 1;

impl FaultPlan {
    /// An all-honest plan.
    pub fn honest(n: usize) -> FaultPlan {
        FaultPlan {
            n,
            entries: Vec::new(),
        }
    }

    /// Validating constructor: entries must target distinct in-range
    /// nodes (sorted by node id for canonical encoding), windows must be
    /// non-empty, and a `Scripted` entry's script must match `n` and
    /// list the node in its fault set.
    pub fn new(n: usize, mut entries: Vec<FaultEntry>) -> Result<FaultPlan, crate::ParamError> {
        entries.sort_by_key(|e| e.node);
        for pair in entries.windows(2) {
            if pair[0].node == pair[1].node {
                return Err(crate::ParamError::constraint(format!(
                    "duplicate fault entry for node {}",
                    pair[0].node
                )));
            }
        }
        for entry in &entries {
            if entry.node >= n {
                return Err(crate::ParamError::constraint(format!(
                    "fault entry node {} out of range for n = {n}",
                    entry.node
                )));
            }
            if let Some(until) = entry.until_round {
                if until <= entry.from_round {
                    return Err(crate::ParamError::constraint(format!(
                        "empty fault window [{}, {until}) for node {}",
                        entry.from_round, entry.node
                    )));
                }
            }
            match &entry.kind {
                FaultKind::Delayed { jitter_permille }
                    if *jitter_permille > MAX_JITTER_PERMILLE =>
                {
                    return Err(crate::ParamError::constraint(format!(
                        "jitter_permille {jitter_permille} exceeds codec limit \
                         {MAX_JITTER_PERMILLE}"
                    )));
                }
                FaultKind::Scripted(script) => {
                    if script.n() != n {
                        return Err(crate::ParamError::constraint(format!(
                            "scripted entry for node {}: script n = {} but plan n = {n}",
                            entry.node,
                            script.n()
                        )));
                    }
                    if !script.fault_set().contains(&entry.node) {
                        return Err(crate::ParamError::constraint(format!(
                            "scripted entry: node {} not in script fault set {:?}",
                            entry.node,
                            script.fault_set()
                        )));
                    }
                }
                _ => {}
            }
        }
        Ok(FaultPlan { n, entries })
    }

    /// Import an `sc-attack` [`Script`] wholesale: every node in the
    /// script's fault set replays its moves live, from round 0 forever.
    /// This is the seam connecting the attack-search subsystem to the
    /// runtime — a searched worst-case witness becomes a live workload.
    pub fn scripted(script: &Script) -> Result<FaultPlan, crate::ParamError> {
        let entries = script
            .fault_set()
            .iter()
            .map(|&node| FaultEntry {
                node,
                from_round: 0,
                until_round: None,
                kind: FaultKind::Scripted(script.clone()),
            })
            .collect();
        FaultPlan::new(script.n(), entries)
    }

    pub fn n(&self) -> usize {
        self.n
    }

    pub fn entries(&self) -> &[FaultEntry] {
        &self.entries
    }

    /// Number of wrapped nodes (the plan's `f`).
    pub fn fault_count(&self) -> usize {
        self.entries.len()
    }

    /// The entry wrapping `node`, if any.
    pub fn entry_for(&self, node: usize) -> Option<&FaultEntry> {
        self.entries.iter().find(|e| e.node == node)
    }

    /// Last round (exclusive) at which any bounded window is still open;
    /// 0 if the plan is honest or all windows are unbounded.
    pub fn last_bounded_window_end(&self) -> u64 {
        self.entries
            .iter()
            .filter_map(|e| e.until_round)
            .max()
            .unwrap_or(0)
    }

    /// Lossless bit encoding. Layout: n:16, count:8, then per entry
    /// node:16, from_round:32, until flag:1 (+ until_round:32), kind
    /// tag:3, kind payload (`Delayed` jitter:20, `Scripted` inline
    /// [`Script::encode`]).
    pub fn encode(&self, out: &mut BitVec) {
        out.push_bits(self.n as u64, 16);
        out.push_bits(self.entries.len() as u64, 8);
        for entry in &self.entries {
            out.push_bits(entry.node as u64, 16);
            out.push_bits(entry.from_round, 32);
            match entry.until_round {
                Some(until) => {
                    out.push_bit(true);
                    out.push_bits(until, 32);
                }
                None => out.push_bit(false),
            }
            out.push_bits(entry.kind.tag(), 3);
            match &entry.kind {
                FaultKind::Delayed { jitter_permille } => {
                    out.push_bits(u64::from(*jitter_permille), 20);
                }
                FaultKind::Scripted(script) => script.encode(out),
                _ => {}
            }
        }
    }

    /// Decode and re-validate. Round-trips [`FaultPlan::encode`] exactly.
    pub fn decode(input: &mut BitReader<'_>) -> Result<FaultPlan, CodecError> {
        let n = input.read_bits(16)? as usize;
        let count = input.read_bits(8)? as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let node = input.read_bits(16)? as usize;
            let from_round = input.read_bits(32)?;
            let until_round = if input.read_bit()? {
                Some(input.read_bits(32)?)
            } else {
                None
            };
            let tag = input.read_bits(3)?;
            let kind = match tag {
                0 => FaultKind::Crash,
                1 => FaultKind::Mute,
                2 => FaultKind::Delayed {
                    jitter_permille: input.read_bits(20)? as u32,
                },
                3 => FaultKind::Equivocate,
                4 => FaultKind::Scripted(Script::decode(input)?),
                other => {
                    return Err(CodecError::InvalidField {
                        field: "fault kind tag",
                        value: other,
                    })
                }
            };
            entries.push(FaultEntry {
                node,
                from_round,
                until_round,
                kind,
            });
        }
        FaultPlan::new(n, entries).map_err(|_| CodecError::InvalidField {
            field: "fault plan constraints",
            value: n as u64,
        })
    }
}
