//! The watchdog/recovery monitor: samples the output board each round,
//! decides whether the cluster currently *counts*, timestamps stability
//! transitions, and maintains the read-path snapshot.
//!
//! The monitor does not know which nodes are faulty. It trusts a value
//! only when at least `quorum` round-matching board reports agree on it
//! (`quorum = n − f` by default; sound for majority whenever `n > 2f`,
//! which every counter here satisfies via `n > 3f`). Agreement alone is
//! not counting: the agreed value must also *advance* — gap-tolerantly,
//! `v == prev + (round − prev_round) mod c` — for `confirm` consecutive
//! observations before the run is declared stable.

use crate::mailbox::SnapshotCell;

/// A stability transition observed by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilityEvent {
    /// Observation round that triggered the transition.
    pub round: u64,
    /// For a `stable` event: the first round of the confirmed good run.
    /// For an unstable event: equal to `round`.
    pub since: u64,
    /// `true` = the run became stable here; `false` = stability was lost.
    pub stable: bool,
    /// Driver timestamp (wall nanoseconds live, virtual nanoseconds in
    /// the deterministic harness).
    pub at_nanos: u64,
}

/// Wall-clock recovery measurement for one disruption burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// First round after the burst's last bounded fault window closed.
    pub burst_end_round: u64,
    /// Round at which the monitor re-confirmed stability.
    pub stable_round: u64,
    /// Nanoseconds from the burst-end round's slot start to the stable
    /// observation.
    pub nanos: u64,
}

/// One board sample as the monitor sees it: `(round_tag, output)` per
/// node, `None` if the node never posted.
pub type BoardSample = Vec<Option<(u64, u64)>>;

/// Driver-agnostic monitor state machine. Drivers feed it one
/// [`BoardSample`] per observation round; it folds the agreed-output
/// stream into stability events, the snapshot cell, and an FNV-1a digest
/// (the bit-reproducibility witness for the deterministic harness).
pub struct MonitorCore {
    quorum: usize,
    modulus: u64,
    confirm: u64,
    prev: Option<(u64, u64)>,
    good_run: u64,
    stable: bool,
    events: Vec<StabilityEvent>,
    digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(digest: u64, word: u64) -> u64 {
    let mut d = digest;
    for byte in word.to_le_bytes() {
        d = (d ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    d
}

/// What one observation round amounted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// Quorum agreed on a value that advances the count.
    Good(u64),
    /// Quorum agreed on a value that does not advance the count (or is
    /// the first agreement, starting a new run).
    Fresh(u64),
    /// No quorum agreement among round-matching reports.
    Disagree,
    /// Too few round-matching reports, but a quorum of nodes is tagged
    /// *behind* this round: the monitor outran the cluster (live-mode
    /// sampling slack). Skipped without penalty.
    Lagged,
}

impl MonitorCore {
    pub fn new(quorum: usize, modulus: u64, confirm: u64) -> MonitorCore {
        assert!(quorum >= 1 && modulus >= 1 && confirm >= 1);
        MonitorCore {
            quorum,
            modulus,
            confirm,
            prev: None,
            good_run: 0,
            stable: false,
            events: Vec::new(),
            digest: FNV_OFFSET,
        }
    }

    /// Default confirmation depth for a modulus-`c` counter: one full
    /// wrap plus one round, so a frozen value can never confirm.
    pub fn default_confirm(modulus: u64) -> u64 {
        modulus + 1
    }

    fn classify(&self, round: u64, sample: &BoardSample) -> Verdict {
        let mut candidates: Vec<(u64, usize)> = Vec::new();
        let mut matching = 0usize;
        let mut behind = 0usize;
        for report in sample {
            match report {
                Some((tag, value)) if *tag == round => {
                    matching += 1;
                    match candidates.iter_mut().find(|(v, _)| v == value) {
                        Some((_, count)) => *count += 1,
                        None => candidates.push((*value, 1)),
                    }
                }
                Some((tag, _)) if *tag < round => behind += 1,
                None => behind += 1,
                _ => {}
            }
        }
        let agreed = candidates
            .iter()
            .find(|(_, count)| *count >= self.quorum)
            .map(|(v, _)| *v);
        match agreed {
            Some(value) => match self.prev {
                Some((prev_round, prev_value)) => {
                    let expected = (prev_value + (round - prev_round)) % self.modulus;
                    if value == expected {
                        Verdict::Good(value)
                    } else {
                        Verdict::Fresh(value)
                    }
                }
                None => Verdict::Fresh(value),
            },
            None if matching < self.quorum && behind >= self.quorum => Verdict::Lagged,
            None => Verdict::Disagree,
        }
    }

    /// Fold one observation round. `at_nanos` timestamps any resulting
    /// stability event; `snapshot` is refreshed whenever the run is
    /// stable at this observation.
    pub fn observe(
        &mut self,
        round: u64,
        sample: &BoardSample,
        at_nanos: u64,
        snapshot: &SnapshotCell,
    ) {
        let verdict = self.classify(round, sample);
        // Digest the agreed-value stream (sentinels for the non-values);
        // two bit-identical runs fold to the same digest.
        let word = match verdict {
            Verdict::Good(v) | Verdict::Fresh(v) => v << 2,
            Verdict::Disagree => 1,
            Verdict::Lagged => 2,
        };
        self.digest = fnv_fold(fnv_fold(self.digest, round), word);

        match verdict {
            Verdict::Good(value) => {
                self.good_run += 1;
                self.prev = Some((round, value));
            }
            Verdict::Fresh(value) => {
                self.mark_unstable(round, at_nanos);
                self.good_run = 1;
                self.prev = Some((round, value));
            }
            Verdict::Disagree => {
                self.mark_unstable(round, at_nanos);
                self.good_run = 0;
                self.prev = None;
            }
            Verdict::Lagged => return,
        }

        if !self.stable && self.good_run >= self.confirm {
            self.stable = true;
            self.events.push(StabilityEvent {
                round,
                since: round + 1 - self.good_run,
                stable: true,
                at_nanos,
            });
        }
        if self.stable {
            if let Some((r, v)) = self.prev {
                snapshot.store(r, v);
            }
        }
    }

    fn mark_unstable(&mut self, round: u64, at_nanos: u64) {
        if self.stable {
            self.stable = false;
            self.events.push(StabilityEvent {
                round,
                since: round,
                stable: false,
                at_nanos,
            });
        }
    }

    pub fn is_stable(&self) -> bool {
        self.stable
    }

    pub fn events(&self) -> &[StabilityEvent] {
        &self.events
    }

    pub fn into_events(self) -> Vec<StabilityEvent> {
        self.events
    }

    /// FNV-1a digest of the (round, verdict) stream — equal across
    /// bit-identical runs.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// First round of the first confirmed stable period, if any.
    pub fn first_stable_round(events: &[StabilityEvent]) -> Option<u64> {
        events.iter().find(|e| e.stable).map(|e| e.since)
    }

    /// Match disruption-burst ends against re-stabilisation events.
    /// `burst_ends` are the rounds at which bounded fault windows close;
    /// `slot_start_nanos(r)` maps a round to its window start time.
    pub fn recoveries(
        events: &[StabilityEvent],
        burst_ends: &[u64],
        slot_start_nanos: impl Fn(u64) -> u64,
    ) -> Vec<Recovery> {
        burst_ends
            .iter()
            .filter_map(|&end| {
                events
                    .iter()
                    .find(|e| e.stable && e.round >= end)
                    .map(|e| Recovery {
                        burst_end_round: end,
                        stable_round: e.round,
                        nanos: e.at_nanos.saturating_sub(slot_start_nanos(end)),
                    })
            })
            .collect()
    }
}
