//! Deterministic-harness suite: the CI face of every live scenario.
//! Fault-free and scripted runs are cross-checked state-for-state
//! against the `sc-sim` reference engine; every injector kind runs a
//! windowed disruption burst and must re-stabilise; and identical
//! configs must reproduce bit-identical reports.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_attack::{MoveSpace, Script, ScriptedAdversary};
use sc_core::{Algorithm, CounterBuilder};
use sc_protocol::{Counter, SyncProtocol};
use sc_runtime::{run_deterministic, FaultEntry, FaultKind, FaultPlan, MonitorCore, RuntimeConfig};
use sc_sim::{adversaries, Simulation};

const PERIOD_NS: u64 = 1_000_000;

fn a41() -> Algorithm {
    CounterBuilder::corollary1(1, 2)
        .expect("A(4,1) parameters are valid")
        .build()
        .expect("A(4,1) builds")
}

fn config(plan: FaultPlan, horizon: u64, seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        period_ns: PERIOD_NS,
        horizon,
        seed,
        confirm: None,
        quorum: None,
        plan,
    }
}

/// Generous stabilisation allowance for windowed faults: the paper bound
/// counts from the moment the system is in an arbitrary state with at
/// most f faults misbehaving — i.e. from the end of the burst.
fn slack_bound(algo: &Algorithm) -> u64 {
    algo.stabilization_bound() * 4 + 8
}

#[test]
fn fault_free_matches_simulation() {
    let algo = a41();
    let horizon = 64;
    let seed = 11;
    let report = run_deterministic(&algo, &config(FaultPlan::honest(algo.n()), horizon, seed))
        .expect("valid config");

    let states = sc_runtime::node::initial_states(&algo, seed);
    let mut sim = Simulation::with_states(&algo, adversaries::none(), states, seed);
    let trace = sim.run_trace(horizon - 1);

    for r in 0..horizon as usize {
        let row = report
            .honest_row(r, &[])
            .unwrap_or_else(|| panic!("round {r}: all honest nodes must post on time"));
        assert_eq!(
            row,
            trace.row(r),
            "round {r}: live node outputs must equal the reference engine"
        );
    }
    assert!(
        report.first_stable_round.is_some(),
        "fault-free run must stabilise"
    );
}

#[test]
fn scripted_witness_matches_scripted_adversary() {
    let algo = a41();
    let horizon = 48;
    let seed = 23;
    // A searched-style lasso script over echo/stale/raw moves.
    let space = MoveSpace {
        raw_values: 2,
        salts: 3,
        max_lag: 2,
    };
    let mut rng = SmallRng::seed_from_u64(99);
    let script = Script::random(4, vec![2], 6, 2, &space, &mut rng);

    let plan = FaultPlan::scripted(&script).expect("script imports");
    let report = run_deterministic(&algo, &config(plan, horizon, seed)).expect("valid config");

    let states = sc_runtime::node::initial_states(&algo, seed);
    let adversary = ScriptedAdversary::new(&script, &algo);
    let mut sim = Simulation::with_states(&algo, adversary, states, seed);
    let trace = sim.run_trace(horizon - 1);

    for r in 0..horizon as usize {
        let row = report
            .honest_row(r, script.fault_set())
            .unwrap_or_else(|| panic!("round {r}: honest nodes must post on time"));
        assert_eq!(
            row,
            trace.row(r),
            "round {r}: scripted live replay must equal ScriptedAdversary"
        );
    }
}

#[test]
fn each_injector_burst_restabilises() {
    let algo = a41();
    let bound = slack_bound(&algo);
    let mut rng = SmallRng::seed_from_u64(7);
    let script = Script::random(4, vec![1], 4, 0, &MoveSpace::echoes(3), &mut rng);
    let kinds: Vec<(&str, FaultKind)> = vec![
        ("mute", FaultKind::Mute),
        (
            "delayed",
            FaultKind::Delayed {
                jitter_permille: 1500,
            },
        ),
        ("equivocate", FaultKind::Equivocate),
        ("scripted", FaultKind::Scripted(script)),
    ];
    for (name, kind) in kinds {
        let burst_end = 24;
        let plan = FaultPlan::new(
            4,
            vec![FaultEntry {
                node: 1,
                from_round: 4,
                until_round: Some(burst_end),
                kind,
            }],
        )
        .expect("valid plan");
        let horizon = burst_end + bound + 16;
        let report = run_deterministic(&algo, &config(plan, horizon, 31)).expect("valid config");
        let last_stable = report
            .events
            .iter()
            .rev()
            .find(|e| e.stable)
            .unwrap_or_else(|| panic!("{name}: run must end stable, events {:?}", report.events));
        assert!(
            last_stable.round <= burst_end + bound,
            "{name}: re-stabilised at {} > burst end {burst_end} + bound {bound}",
            last_stable.round
        );
        let recovery = report
            .recoveries
            .iter()
            .find(|r| r.burst_end_round == burst_end);
        if report.events.iter().any(|e| !e.stable) {
            assert!(
                recovery.is_some(),
                "{name}: a disrupted run must report recovery"
            );
        }
    }
}

#[test]
fn crash_run_stabilises_and_serves_without_the_dead_node() {
    let algo = a41();
    let bound = slack_bound(&algo);
    let plan = FaultPlan::new(
        4,
        vec![FaultEntry {
            node: 3,
            from_round: 6,
            until_round: None,
            kind: FaultKind::Crash,
        }],
    )
    .expect("valid plan");
    let horizon = 6 + bound + 16;
    let report = run_deterministic(&algo, &config(plan, horizon, 5)).expect("valid config");
    let last = report.events.iter().rev().find(|e| e.stable);
    assert!(
        last.is_some(),
        "three survivors out of four must count, events {:?}",
        report.events
    );
    // The dead node's board entry goes stale, never poisoning quorum.
    let (_, final_sample) = report.trace.last().expect("trace recorded");
    let stale_tag = final_sample[3].map(|(tag, _)| tag);
    assert!(
        stale_tag.is_none() || stale_tag.unwrap() < report.rounds - 1,
        "crashed node must stop posting"
    );
}

#[test]
fn honest_deadline_miss_degrades_gracefully() {
    // An *honest* node with late publishes (jitter beyond the read
    // deadline) is charged as faulty while slow, and the run re-confirms
    // stability once it catches up.
    let algo = a41();
    let bound = slack_bound(&algo);
    let burst_end = 20;
    let plan = FaultPlan::new(
        4,
        vec![FaultEntry {
            node: 0,
            from_round: 4,
            until_round: Some(burst_end),
            kind: FaultKind::Delayed {
                jitter_permille: 2000, // up to 2 periods late: guaranteed misses
            },
        }],
    )
    .expect("valid plan");
    let horizon = burst_end + bound + 16;
    let report = run_deterministic(&algo, &config(plan, horizon, 13)).expect("valid config");
    let last_stable = report
        .events
        .iter()
        .rev()
        .find(|e| e.stable)
        .expect("run must end stable after the laggard catches up");
    assert!(last_stable.round <= burst_end + bound);
    // The slow node itself keeps reading: it must not rack up misses
    // faster than one per sender per round even while late.
    assert!(report.missed[0] <= report.rounds * 3);
}

#[test]
fn identical_configs_reproduce_bit_identically() {
    let algo = a41();
    let mut rng = SmallRng::seed_from_u64(41);
    let script = Script::random(4, vec![2], 5, 1, &MoveSpace::echoes(2), &mut rng);
    let plans = vec![
        FaultPlan::honest(4),
        FaultPlan::scripted(&script).expect("imports"),
        FaultPlan::new(
            4,
            vec![FaultEntry {
                node: 1,
                from_round: 3,
                until_round: Some(17),
                kind: FaultKind::Delayed {
                    jitter_permille: 1200,
                },
            }],
        )
        .expect("valid"),
    ];
    for plan in plans {
        let cfg = config(plan, 40, 77);
        let a = run_deterministic(&algo, &cfg).expect("valid config");
        let b = run_deterministic(&algo, &cfg).expect("valid config");
        assert_eq!(a.digest, b.digest, "digests must be bit-identical");
        assert_eq!(a.trace, b.trace, "traces must be bit-identical");
        assert_eq!(a.missed, b.missed);
        assert_eq!(a.events.len(), b.events.len());
    }
}

#[test]
fn monitor_confirms_counting_not_agreement() {
    // A board frozen on one agreed value must never confirm stability.
    let cell = sc_runtime::SnapshotCell::new();
    let mut monitor = MonitorCore::new(3, 2, MonitorCore::default_confirm(2));
    for round in 0..20u64 {
        let sample = vec![Some((round, 1u64)); 4]; // agreed but frozen
        monitor.observe(round, &sample, round, &cell);
    }
    assert!(
        !monitor.is_stable(),
        "a frozen counter is agreement without counting"
    );
    assert_eq!(cell.load().0, 0, "snapshot must stay unpublished");
}
