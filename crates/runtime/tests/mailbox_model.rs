//! Exhaustive interleaving checks of the mailbox seqlock discipline via
//! the `sc-model` explorer: a reader that finishes its protocol either
//! rejects, or accepts exactly a complete published (round, payload)
//! pair — never a torn mixture — under **every** schedule. A
//! deliberately broken writer (payload stores outside the odd-sequence
//! phase) demonstrates the checker finds torn reads, so the green run
//! is evidence, not vacuity.

use sc_model::{Explorer, ModelThread, Step};

/// The shared slot, one payload word + round tag, modelled at
/// one-access-per-step granularity (the loom discipline).
#[derive(Clone, Debug, Default)]
struct SlotModel {
    seq: u64,
    word: u64,
    round: u64,
}

/// A reader's registers and outcome.
#[derive(Clone, Debug, Default)]
struct ReaderLocal {
    s1: u64,
    word: u64,
    round: u64,
    /// `Some((round, word))` once the reader ran to completion and
    /// accepted; `None` while running or after rejecting.
    accepted: Option<(u64, u64)>,
    finished: bool,
}

/// Writer publishing `(round, word)` with the real `Slot::publish`
/// sequence discipline: seq odd → payload → round → seq even.
fn correct_writer(publishes: &[(u64, u64)]) -> ModelThread<SlotModel, ReaderLocal> {
    let mut steps: Vec<Step<SlotModel, ReaderLocal>> = Vec::new();
    for &(round, word) in publishes {
        steps.push(Box::new(|s, _| s.seq += 1));
        steps.push(Box::new(move |s, _| s.word = word));
        steps.push(Box::new(move |s, _| s.round = round));
        steps.push(Box::new(|s, _| s.seq += 1));
    }
    ModelThread::new("writer", steps)
}

/// Writer that "publishes" without the seqlock discipline: payload and
/// round land while the sequence still claims the old message.
fn broken_writer(round: u64, word: u64) -> ModelThread<SlotModel, ReaderLocal> {
    let steps: Vec<Step<SlotModel, ReaderLocal>> = vec![
        Box::new(move |s, _| s.word = word),
        Box::new(move |s, _| s.round = round),
        Box::new(|s, _| s.seq += 2),
    ];
    ModelThread::new("broken-writer", steps)
}

/// The real `Slot::observe` protocol, one shared access per step: load
/// seq, copy payload, load round, re-load seq and decide.
fn reader() -> ModelThread<SlotModel, ReaderLocal> {
    let steps: Vec<Step<SlotModel, ReaderLocal>> = vec![
        Box::new(|s, l| l.s1 = s.seq),
        Box::new(|s, l| l.word = s.word),
        Box::new(|s, l| l.round = s.round),
        Box::new(|s, l| {
            let s2 = s.seq;
            l.finished = true;
            if l.s1 == s2 && l.s1 % 2 == 0 && l.s1 > 0 {
                l.accepted = Some((l.round, l.word));
            }
        }),
    ];
    ModelThread::new("reader", steps)
}

/// Accepted messages must be complete publishes — the initial state or
/// any `(round, word)` the writer actually published, never a mixture.
fn check_accepts_are_published(
    locals: &[ReaderLocal],
    published: &[(u64, u64)],
) -> Result<(), String> {
    for (i, local) in locals.iter().enumerate() {
        if !local.finished {
            continue;
        }
        if let Some(got) = local.accepted {
            if !published.contains(&got) {
                return Err(format!(
                    "reader {i} accepted torn message {got:?}; published set {published:?}"
                ));
            }
        }
    }
    Ok(())
}

#[test]
fn single_reader_never_accepts_a_torn_message() {
    // Two successive publishes racing one reader: every interleaving.
    let published = [(1u64, 0xA1u64), (2, 0xB2)];
    let explorer = Explorer::new(vec![correct_writer(&published), reader()]);
    let stats = explorer
        .check(
            SlotModel::default(),
            vec![ReaderLocal::default(), ReaderLocal::default()],
            move |_, locals, _| check_accepts_are_published(locals, &published),
        )
        .expect("seqlock discipline must never leak a torn read");
    // 8 writer steps + 4 reader steps: C(12, 4) = 495 schedules.
    assert_eq!(stats.schedules, 495);
}

#[test]
fn two_readers_agree_with_the_publish_history() {
    let published = [(1u64, 0xC3u64)];
    let explorer = Explorer::new(vec![correct_writer(&published), reader(), reader()]);
    let stats = explorer
        .check(
            SlotModel::default(),
            vec![
                ReaderLocal::default(),
                ReaderLocal::default(),
                ReaderLocal::default(),
            ],
            move |_, locals, _| check_accepts_are_published(locals, &published),
        )
        .expect("seqlock discipline must hold for concurrent readers");
    // 12!/(4!4!4!) = 34650 schedules.
    assert_eq!(stats.schedules, 34_650);
}

#[test]
fn reader_racing_two_publishes_sees_either_complete_message() {
    // Start from an already-published slot; the writer republishes.
    // Readers may see the old or the new message, both complete.
    let initial = SlotModel {
        seq: 2,
        word: 0xA1,
        round: 1,
    };
    let published = [(1u64, 0xA1u64), (2, 0xD4)];
    let explorer = Explorer::new(vec![correct_writer(&published[1..]), reader()]);
    explorer
        .check(
            initial,
            vec![ReaderLocal::default(), ReaderLocal::default()],
            move |_, locals, _| check_accepts_are_published(locals, &published),
        )
        .expect("republish over a live slot must stay tear-free");
}

#[test]
fn broken_writer_is_caught_by_the_model() {
    // Same scenario as above but the writer skips the odd-sequence
    // phase: some schedule lets the reader accept (old round, new word).
    let initial = SlotModel {
        seq: 2,
        word: 0xA1,
        round: 1,
    };
    let published = [(1u64, 0xA1u64), (2, 0xD4)];
    let explorer = Explorer::new(vec![broken_writer(2, 0xD4), reader()]);
    let violation = explorer
        .check(
            initial,
            vec![ReaderLocal::default(), ReaderLocal::default()],
            move |_, locals, _| check_accepts_are_published(locals, &published),
        )
        .expect_err("the checker must find the torn read");
    assert!(
        violation.message.contains("torn message"),
        "unexpected violation: {violation}"
    );
}
