//! Live-runtime suite: real OS threads, real injected misbehaviour,
//! wall-clock deadlines. Assertions are deliberately timing-tolerant
//! (CI machines stall) — the bit-exact versions of these scenarios live
//! in `det_harness.rs`; here the point is that the *actual threads*
//! stabilise, recover, and serve lock-free reads.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_attack::{MoveSpace, Script};
use sc_core::{Algorithm, CounterBuilder};
use sc_runtime::{run_live, FaultEntry, FaultKind, FaultPlan, RuntimeConfig};

/// Roomy round period so loaded CI machines still make deadlines.
const PERIOD_NS: u64 = 2_000_000;

/// Empirical stabilisation allowance in rounds. The *paper-bound × slack*
/// assertion runs in the deterministic harness (virtual time — see
/// `det_harness.rs`); A(4,1)'s formal bound is 2304 rounds, which at a
/// 2 ms period would cost ~18 s of wall clock per scenario. Observed
/// stabilisation is ≤ 9 rounds fault-free and ≤ 50 under the searched
/// worst-case script, so 60 rounds of headroom is generous without
/// making the suite minutes long.
const SETTLE_ROUNDS: u64 = 60;

fn a41() -> Algorithm {
    CounterBuilder::corollary1(1, 2)
        .expect("A(4,1) parameters are valid")
        .build()
        .expect("A(4,1) builds")
}

fn config(plan: FaultPlan, horizon: u64, seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        period_ns: PERIOD_NS,
        horizon,
        seed,
        confirm: None,
        quorum: None,
        plan,
    }
}

/// Drain reads until the run finishes; assert the versioned snapshot is
/// monotone throughout and return (reads, last version).
fn monotone_reader(handle: sc_runtime::CounterHandle<'_>) -> (u64, u64) {
    let mut reads = 0u64;
    let mut last_version = 0u64;
    while !handle.is_done() {
        let (version, value) = handle.read();
        assert!(
            version >= last_version,
            "snapshot version went backwards: {version} < {last_version}"
        );
        assert!(value < 2, "value must stay inside the modulus");
        last_version = version;
        reads += 1;
    }
    (reads, last_version)
}

#[test]
fn live_injectors_stabilise_within_slack() {
    let algo = a41();
    let mut rng = SmallRng::seed_from_u64(3);
    let script = Script::random(4, vec![1], 4, 0, &MoveSpace::echoes(3), &mut rng);
    let kinds: Vec<(&str, FaultKind)> = vec![
        ("mute", FaultKind::Mute),
        (
            "delayed",
            FaultKind::Delayed {
                jitter_permille: 1500,
            },
        ),
        ("equivocate", FaultKind::Equivocate),
        ("scripted", FaultKind::Scripted(script)),
    ];
    for (name, kind) in kinds {
        let burst_end = 20u64;
        let plan = FaultPlan::new(
            4,
            vec![FaultEntry {
                node: 1,
                from_round: 4,
                until_round: Some(burst_end),
                kind,
            }],
        )
        .expect("valid plan");
        let horizon = burst_end + SETTLE_ROUNDS;
        let (report, (reads, last_version)) =
            run_live(&algo, &config(plan, horizon, 17), monotone_reader).expect("valid config");
        let last_stable = report
            .events
            .iter()
            .rev()
            .find(|e| e.stable)
            .unwrap_or_else(|| panic!("{name}: run must end stable; events {:?}", report.events));
        assert!(
            last_stable.round < horizon,
            "{name}: stability event out of range"
        );
        assert!(reads > 0, "{name}: reader must get reads in");
        assert!(
            last_version > 0,
            "{name}: reader must observe a stable snapshot"
        );
    }
}

#[test]
fn crash_during_read_serving_keeps_reads_monotone() {
    let algo = a41();
    // Crash strikes *after* expected initial stabilisation, mid-serving.
    let crash_round = SETTLE_ROUNDS;
    let plan = FaultPlan::new(
        4,
        vec![FaultEntry {
            node: 2,
            from_round: crash_round,
            until_round: None,
            kind: FaultKind::Crash,
        }],
    )
    .expect("valid plan");
    let horizon = crash_round + SETTLE_ROUNDS;
    let (report, (reads, last_version)) =
        run_live(&algo, &config(plan, horizon, 29), monotone_reader).expect("valid config");
    assert!(reads > 0);
    assert!(
        last_version > 0,
        "reads must observe a stable snapshot despite the crash; events {:?}",
        report.events
    );
    let last_stable = report.events.iter().rev().find(|e| e.stable);
    assert!(
        last_stable.is_some(),
        "three survivors must keep counting; events {:?}",
        report.events
    );
}

#[test]
fn scripted_witness_runs_live_from_round_zero() {
    // The attack-search seam end-to-end: an unbounded scripted witness
    // misbehaves from round 0; the honest majority still stabilises.
    let algo = a41();
    let mut rng = SmallRng::seed_from_u64(5);
    let script = Script::random(
        4,
        vec![3],
        6,
        2,
        &MoveSpace {
            raw_values: 2,
            salts: 3,
            max_lag: 2,
        },
        &mut rng,
    );
    let plan = FaultPlan::scripted(&script).expect("script imports");
    let horizon = 2 * SETTLE_ROUNDS;
    let (report, _) =
        run_live(&algo, &config(plan, horizon, 41), monotone_reader).expect("valid config");
    assert!(
        report.events.iter().rev().find(|e| e.stable).is_some(),
        "n = 4 tolerates one scripted Byzantine node; events {:?}",
        report.events
    );
}

#[test]
fn report_accounts_for_live_misses() {
    // A mute burst must show up as misses charged by the receivers.
    let algo = a41();
    let plan = FaultPlan::new(
        4,
        vec![FaultEntry {
            node: 0,
            from_round: 2,
            until_round: Some(12),
            kind: FaultKind::Mute,
        }],
    )
    .expect("valid plan");
    let (report, _) =
        run_live(&algo, &config(plan, 40, 53), monotone_reader).expect("valid config");
    let receiver_misses: u64 = report.missed[1..].iter().sum();
    assert!(
        receiver_misses >= 3 * 10 / 2,
        "10 mute rounds × 3 receivers must register as misses, got {receiver_misses}"
    );
}
