//! Property coverage for the `FaultPlan` codec: lossless round-trips on
//! arbitrary injection schedules (including inline `Script` payloads and
//! `Script`-import plans), deterministic re-encoding, and typed
//! rejection of truncated byte streams.

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_attack::{MoveSpace, Script};
use sc_protocol::BitVec;
use sc_runtime::{FaultEntry, FaultKind, FaultPlan};

/// A random well-formed plan: n in 4..=9, up to 3 wrapped nodes, all
/// five kinds reachable, windowed and unbounded entries mixed.
fn random_plan(seed: u64) -> FaultPlan {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n: usize = rng.random_range(4..=9);
    let f: usize = rng.random_range(0..=3.min(n - 1));
    let mut nodes: Vec<usize> = (0..n).collect();
    nodes.rotate_left(rng.random_range(0..n));
    nodes.truncate(f);
    nodes.sort_unstable();
    let entries = nodes
        .iter()
        .map(|&node| {
            let from_round: u64 = rng.random_range(0..1000);
            let until_round = if rng.random_bool(0.5) {
                Some(from_round + rng.random_range(1..500))
            } else {
                None
            };
            let kind = match rng.random_range(0..5u32) {
                0 => FaultKind::Crash,
                1 => FaultKind::Mute,
                2 => FaultKind::Delayed {
                    jitter_permille: rng.random_range(0..=(1 << 20) - 1),
                },
                3 => FaultKind::Equivocate,
                _ => {
                    let space = MoveSpace {
                        raw_values: rng.random_range(0..=3),
                        salts: rng.random_range(1..=3),
                        max_lag: rng.random_range(0..=2),
                    };
                    let rounds: usize = rng.random_range(1..=4);
                    let cycle_start = rng.random_range(0..rounds);
                    FaultKind::Scripted(Script::random(
                        n,
                        vec![node],
                        rounds,
                        cycle_start,
                        &space,
                        &mut rng,
                    ))
                }
            };
            FaultEntry {
                node,
                from_round,
                until_round,
                kind,
            }
        })
        .collect();
    FaultPlan::new(n, entries).expect("sampled plan is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Encode → decode is the identity on arbitrary plans, and
    /// re-encoding the decoded plan is bit-identical.
    #[test]
    fn plan_codec_is_lossless(seed in proptest::any::<u64>()) {
        let plan = random_plan(seed);
        let mut bits = BitVec::new();
        plan.encode(&mut bits);
        let back = FaultPlan::decode(&mut bits.reader()).unwrap();
        prop_assert_eq!(&back, &plan);
        let mut bits2 = BitVec::new();
        back.encode(&mut bits2);
        prop_assert_eq!(bits.len(), bits2.len());
        prop_assert_eq!(bits.words(), bits2.words());
    }

    /// A `Script`-import plan (the attack-search → runtime seam) wraps
    /// every scripted node and survives the round-trip.
    #[test]
    fn script_import_round_trips(seed in proptest::any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n: usize = rng.random_range(4..=7);
        let f: usize = rng.random_range(1..=2);
        let mut fault_set: Vec<usize> = (0..n).collect();
        fault_set.rotate_left(rng.random_range(0..n));
        fault_set.truncate(f);
        fault_set.sort_unstable();
        let rounds: usize = rng.random_range(1..=5);
        let script = Script::random(
            n,
            fault_set.clone(),
            rounds,
            rng.random_range(0..rounds),
            &MoveSpace { raw_values: 2, salts: 2, max_lag: 2 },
            &mut rng,
        );
        let plan = FaultPlan::scripted(&script).unwrap();
        prop_assert_eq!(plan.fault_count(), f);
        for &node in &fault_set {
            let entry = plan.entry_for(node).expect("every scripted node wrapped");
            prop_assert!(matches!(entry.kind, FaultKind::Scripted(_)));
            prop_assert_eq!(entry.from_round, 0);
            prop_assert_eq!(entry.until_round, None);
        }
        let mut bits = BitVec::new();
        plan.encode(&mut bits);
        prop_assert_eq!(&FaultPlan::decode(&mut bits.reader()).unwrap(), &plan);
    }

    /// Every proper prefix of an encoding fails to decode losslessly:
    /// either a typed error, or (if a prefix happens to parse) a plan
    /// different from the original — never silent garbage equality.
    #[test]
    fn truncation_never_decodes_to_the_original(seed in proptest::any::<u64>()) {
        let plan = random_plan(seed);
        let mut bits = BitVec::new();
        plan.encode(&mut bits);
        if bits.is_empty() {
            return;
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xdead);
        for _ in 0..8 {
            let keep = rng.random_range(0..bits.len());
            let mut truncated = BitVec::new();
            for i in 0..keep {
                truncated.push_bit(bits.bit(i));
            }
            if let Ok(back) = FaultPlan::decode(&mut truncated.reader()) {
                prop_assert!(
                    back != plan,
                    "a strict prefix must not decode to the original plan"
                );
            }
        }
    }
}
