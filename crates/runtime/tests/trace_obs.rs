//! Observability integration suite (`trace` feature): instrumentation
//! must be observe-only (traced and untraced digests bit-identical), the
//! flight recorder must fire on real watchdog anomalies with a merged
//! globally-ordered dump, and the metered read path must count exactly.

#![cfg(feature = "trace")]

use sc_core::{Algorithm, CounterBuilder};
use sc_protocol::Counter;
use sc_runtime::obs::{EventKind, FlightConfig, TriggerReason};
use sc_runtime::{
    run_deterministic, run_deterministic_obs, run_live_obs, FaultEntry, FaultKind, FaultPlan,
    RuntimeConfig, RuntimeObs,
};

const PERIOD_NS: u64 = 1_000_000;

fn a41() -> Algorithm {
    CounterBuilder::corollary1(1, 2)
        .expect("A(4,1) parameters are valid")
        .build()
        .expect("A(4,1) builds")
}

fn config(plan: FaultPlan, horizon: u64, seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        period_ns: PERIOD_NS,
        horizon,
        seed,
        confirm: None,
        quorum: None,
        plan,
    }
}

fn delayed_burst(node: usize, from: u64, until: u64) -> FaultPlan {
    FaultPlan::new(
        4,
        vec![FaultEntry {
            node,
            from_round: from,
            until_round: Some(until),
            kind: FaultKind::Delayed {
                jitter_permille: 2000, // up to 2 periods late: guaranteed misses
            },
        }],
    )
    .expect("valid plan")
}

/// Satellite: a recording bundle must not perturb the protocol — the
/// digest (and the whole report) is bit-identical traced vs untraced.
#[test]
fn traced_and_untraced_digests_bit_identical() {
    let algo = a41();
    let plans = vec![
        FaultPlan::honest(4),
        delayed_burst(0, 4, 20),
        FaultPlan::new(
            4,
            vec![FaultEntry {
                node: 1,
                from_round: 6,
                until_round: Some(22),
                kind: FaultKind::Equivocate,
            }],
        )
        .expect("valid plan"),
    ];
    for plan in plans {
        let cfg = config(plan, 60, 77);
        let untraced = run_deterministic(&algo, &cfg).expect("valid config");
        let obs = RuntimeObs::recording(FlightConfig::default());
        let traced = run_deterministic_obs(&algo, &cfg, &obs).expect("valid config");

        assert_eq!(
            untraced.digest, traced.digest,
            "tracing must not perturb the digest"
        );
        assert_eq!(untraced.trace, traced.trace);
        assert_eq!(untraced.missed, traced.missed);
        assert_eq!(untraced.events.len(), traced.events.len());
        assert_eq!(untraced.wall_nanos, traced.wall_nanos);

        // ... while the recording side actually recorded.
        let collector = obs.collector().expect("recording bundle");
        assert!(collector.total_pushed() > 0, "events must have been pushed");
        let metrics = obs.metrics().expect("recording bundle");
        assert!(
            metrics.counter("runtime.publishes").unwrap_or(0) > 0,
            "honest publishes must be counted"
        );
    }
}

/// The over-budget-burst anomaly: a run that confirmed stability loses
/// it to an in-window equivocator — the watchdog fires the flight
/// recorder, freezing the last window of merged events.
#[test]
fn flight_recorder_fires_on_overbudget_burst() {
    let algo = a41();

    // Probe where this seed confirms stability; until the burst begins
    // the faulted run below is identical to this fault-free one.
    let seed = 90;
    let probe =
        run_deterministic(&algo, &config(FaultPlan::honest(4), 200, seed)).expect("valid config");
    let stable_at = probe.first_stable_round.expect("fault-free run stabilises");

    // Over budget: A(4,1) tolerates f = 1, so two simultaneous
    // equivocators leave only two fresh board rows — below any majority
    // quorum — and confirmed stability is lost for the burst window.
    let burst_start = stable_at + 4;
    let burst_end = burst_start + 16;
    let horizon = burst_end + algo.stabilization_bound() * 4 + 24;
    let plan = FaultPlan::new(
        4,
        (2..4)
            .map(|node| FaultEntry {
                node,
                from_round: burst_start,
                until_round: Some(burst_end),
                kind: FaultKind::Equivocate,
            })
            .collect(),
    )
    .expect("valid plan");
    let mut cfg = config(plan, horizon, seed);
    cfg.quorum = Some(3); // the default n − fault_count is no majority here

    let obs = RuntimeObs::recording(FlightConfig::default());
    run_deterministic_obs(&algo, &cfg, &obs).expect("valid config");

    assert!(
        obs.flight_fired(),
        "losing stability must fire the recorder"
    );
    let dump = obs.flight_dump().expect("fired recorder has a dump");
    assert_eq!(dump.reason, TriggerReason::StabilityLost);
    assert!(
        dump.round >= burst_start,
        "trigger at {} before the burst at {burst_start}",
        dump.round
    );
    assert_eq!(
        dump.first_round,
        dump.round
            .saturating_sub(FlightConfig::default().window_rounds)
    );
    assert!(!dump.stream.events.is_empty(), "window must hold events");
    // The frozen window is round-bounded and globally ordered.
    assert!(dump.stream.events.iter().all(|e| {
        e.event.round >= dump.first_round || e.event.kind == EventKind::FlightTrigger
    }));
    assert!(dump
        .stream
        .events
        .windows(2)
        .all(|w| w[0].event.t_ns <= w[1].event.t_ns));

    let jsonl = dump.to_jsonl();
    let header = jsonl.lines().next().expect("header line");
    assert!(header.contains("\"flight\":\"stability_lost\""), "{header}");
    assert_eq!(
        jsonl.lines().count(),
        1 + dump.stream.events.len(),
        "one JSON line per event plus the header"
    );
    assert!(dump.to_table().contains("stability_lost"));
}

/// The deadline-miss-storm anomaly: a laggard whose late publishes
/// charge misses across the cluster trips the storm threshold.
#[test]
fn flight_recorder_fires_on_miss_storm() {
    let algo = a41();
    let obs = RuntimeObs::recording(FlightConfig {
        miss_storm: 2,
        ..FlightConfig::default()
    });
    let report = run_deterministic_obs(&algo, &config(delayed_burst(0, 4, 20), 60, 13), &obs)
        .expect("valid config");

    assert!(obs.flight_fired(), "a miss storm must fire the recorder");
    let dump = obs.flight_dump().expect("fired recorder has a dump");
    assert_eq!(dump.reason, TriggerReason::MissStorm);
    assert!(dump
        .stream
        .events
        .iter()
        .any(|e| e.event.kind == EventKind::DeadlineMiss));

    // The metric agrees with the report's cumulative miss counters.
    let metrics = obs.metrics().expect("recording bundle");
    let total: u64 = report.missed.iter().sum();
    assert_eq!(metrics.counter("runtime.deadline_misses"), Some(total));
}

/// The metered read path counts every read exactly (batched flushes plus
/// the drop-time remainder) without touching the handle's single-load
/// read.
#[test]
fn metered_reads_count_exactly() {
    let algo = a41();
    let cfg = config(FaultPlan::honest(4), 30, 3);
    let obs = RuntimeObs::recording(FlightConfig::default());
    const READS: u64 = 10_001; // not a multiple of the flush batch

    let (report, observed) = run_live_obs(&algo, &cfg, &obs, |handle| {
        let metered = obs.meter_reads(handle);
        for _ in 0..READS {
            metered.read();
        }
        while !metered.is_done() {
            std::thread::yield_now();
        }
        metered.read() // one post-run read sees the final snapshot
    })
    .expect("valid config");

    assert_eq!(report.rounds, 30);
    let metrics = obs.metrics().expect("recording bundle");
    assert_eq!(
        metrics.counter("runtime.reads"),
        Some(READS + 1),
        "every read must be counted, remainder flushed on drop"
    );
    // The read itself still went through the snapshot cell.
    if report.first_stable_round.is_some() {
        assert!(observed.0 > 0, "stable run must have published a snapshot");
    }
}

/// Recovery measurements land in the `runtime.recovery_ns` histogram.
#[test]
fn recoveries_recorded_as_histogram() {
    let algo = a41();
    let horizon = 20 + algo.stabilization_bound() * 4 + 24;
    let obs = RuntimeObs::recording(FlightConfig::default());
    let report = run_deterministic_obs(&algo, &config(delayed_burst(1, 4, 20), horizon, 31), &obs)
        .expect("valid config");

    let metrics = obs.metrics().expect("recording bundle");
    let hist = metrics.hist("runtime.recovery_ns").expect("histogram");
    assert_eq!(hist.count, report.recoveries.len() as u64);
    if let Some(slowest) = report.recoveries.iter().map(|r| r.nanos).max() {
        assert_eq!(hist.max, slowest);
    }
}

/// A detached bundle records nothing and reports accordingly.
#[test]
fn detached_bundle_is_inert() {
    let obs = RuntimeObs::default();
    assert!(!obs.is_recording());
    assert!(!obs.flight_fired());
    assert!(obs.flight_dump().is_none());
    assert!(obs.metrics().is_none());
    assert!(obs.collector().is_none());
    assert!(!obs.trigger_manual(0));
}
