//! E8 (extension) — transient-fault recovery: the motivating scenario of
//! self-stabilisation. The counter runs, *every* register in the system is
//! corrupted (soft-error burst / partial reset), and the system must
//! re-stabilise within the same bound, with Byzantine nodes live throughout.
//!
//! Not a table/figure of the paper, but the direct operational content of
//! its self-stabilisation guarantee; recovery-time statistics complement the
//! stabilisation-time measurements of E1/E3.
//!
//! The burst scenarios are independent of each other, so they run as one
//! [`Batch`] sweep: each scenario starts from the post-burst configuration
//! (the stabilised snapshot with every register overwritten by an arbitrary
//! state) and must re-stabilise within the bound.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_bench::print_table;
use sc_core::{CounterBuilder, CounterState};
use sc_protocol::{Counter as _, NodeId, SyncProtocol as _};
use sc_sim::{adversaries, Batch, Scenario, Simulation};

fn main() {
    println!("# E8 — recovery from transient fault bursts\n");
    let mut rows = Vec::new();
    for (label, builder, faulty) in [
        (
            "A(4,1)",
            CounterBuilder::corollary1(1, 2).unwrap(),
            vec![1usize],
        ),
        (
            "A(12,3)",
            CounterBuilder::corollary1(1, 2).unwrap().boost(3).unwrap(),
            vec![0, 1, 4],
        ),
        (
            "A(36,7)",
            CounterBuilder::corollary1(1, 2)
                .unwrap()
                .boost(3)
                .unwrap()
                .boost(3)
                .unwrap(),
            vec![0, 1, 2, 3, 4, 12, 24],
        ),
    ] {
        let algo = builder.build().unwrap();
        let bound = algo.stabilization_bound();

        // Phase 1: reach a stabilised configuration once.
        let adv = adversaries::two_faced(&algo, faulty.iter().copied(), 3);
        let mut sim = Simulation::new(&algo, adv, 3);
        sim.run_until_stable(bound + 64)
            .expect("initial stabilisation");
        let snapshot: Vec<CounterState> = sim.states().to_vec();

        // Phase 2: every burst is an independent scenario — the stabilised
        // snapshot with *all* registers overwritten by arbitrary states —
        // swept in one batch.
        let bursts = 10u64;
        let scenarios: Vec<Scenario<CounterState>> = (0..bursts)
            .map(|burst| {
                let seed = 9000 + burst;
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut corrupted = snapshot.clone();
                for (i, state) in corrupted.iter_mut().enumerate() {
                    *state = algo.random_state(NodeId::new(i), &mut rng);
                }
                Scenario::with_states(seed, corrupted)
            })
            .collect();
        let report = Batch::new(&algo, bound + 64).run(&scenarios, |s| {
            adversaries::two_faced(&algo, faulty.iter().copied(), s.seed)
        });
        for outcome in &report.outcomes {
            outcome
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("{label} burst (seed {}): {e}", outcome.seed));
        }
        let summary = report.summary();
        assert!(
            summary.worst <= bound,
            "{label}: recovery exceeded the bound"
        );
        rows.push(vec![
            label.to_string(),
            bursts.to_string(),
            format!("{:.0}", summary.mean),
            summary.worst.to_string(),
            bound.to_string(),
        ]);
    }
    print_table(
        &[
            "counter",
            "bursts",
            "mean recovery",
            "worst recovery",
            "bound",
        ],
        &rows,
    );
    println!(
        "\nEvery burst recovered within the stabilisation bound — arbitrary \
         mid-run corruption is no worse than an arbitrary initial state."
    );
}
