//! E8 (extension) — transient-fault recovery: the motivating scenario of
//! self-stabilisation. The counter runs, *every* register in the system is
//! corrupted (soft-error burst / partial reset), and the system must
//! re-stabilise within the same bound, with Byzantine nodes live throughout.
//!
//! Not a table/figure of the paper, but the direct operational content of
//! its self-stabilisation guarantee; recovery-time statistics complement the
//! stabilisation-time measurements of E1/E3.

use sc_bench::print_table;
use sc_core::CounterBuilder;
use sc_protocol::Counter as _;
use sc_sim::{adversaries, Simulation};

fn main() {
    println!("# E8 — recovery from transient fault bursts\n");
    let mut rows = Vec::new();
    for (label, builder, faulty) in [
        ("A(4,1)", CounterBuilder::corollary1(1, 2).unwrap(), vec![1usize]),
        (
            "A(12,3)",
            CounterBuilder::corollary1(1, 2).unwrap().boost(3).unwrap(),
            vec![0, 1, 4],
        ),
        (
            "A(36,7)",
            CounterBuilder::corollary1(1, 2).unwrap().boost(3).unwrap().boost(3).unwrap(),
            vec![0, 1, 2, 3, 4, 12, 24],
        ),
    ] {
        let algo = builder.build().unwrap();
        let bound = algo.stabilization_bound();
        let adv = adversaries::two_faced(&algo, faulty.iter().copied(), 3);
        let mut sim = Simulation::new(&algo, adv, 3);
        sim.run_until_stable(bound + 64).expect("initial stabilisation");

        let bursts = 10u64;
        let mut worst = 0u64;
        let mut total = 0u64;
        for burst in 0..bursts {
            sim.corrupt_all(9000 + burst);
            let report = sim.run_until_stable(bound + 64).expect("recovery");
            worst = worst.max(report.stabilization_round);
            total += report.stabilization_round;
        }
        rows.push(vec![
            label.to_string(),
            bursts.to_string(),
            format!("{:.0}", total as f64 / bursts as f64),
            worst.to_string(),
            bound.to_string(),
        ]);
    }
    print_table(
        &["counter", "bursts", "mean recovery", "worst recovery", "bound"],
        &rows,
    );
    println!(
        "\nEvery burst recovered within the stabilisation bound — arbitrary \
         mid-run corruption is no worse than an arbitrary initial state."
    );
}
