//! E5 — §5 / Theorem 4 / Corollaries 4–5: the pulling model.
//!
//! Series regenerated:
//! 1. pulls per node per round — deterministic (N−1 per level) vs sampled
//!    (k·M + M + kings per level), across stack sizes;
//! 2. empirical per-round failure rate after stabilisation vs sample size M
//!    (the Lemma 8 concentration curve);
//! 3. pseudo-random variant (Corollary 5): fraction of sampling seeds whose
//!    fixed choices stabilise under an oblivious adversary and then count
//!    deterministically.

use rand::rngs::SmallRng;
use sc_bench::print_table;
use sc_core::{Algorithm, CounterBuilder};
use sc_protocol::NodeId;
use sc_pulling::{KingPullMode, PullCounter, PullProtocol, Pulled, Sampling};
use sc_sim::{adversaries, first_stable_window, violation_rate, Simulation};

fn a12_f1() -> Algorithm {
    CounterBuilder::corollary1(1, 576)
        .unwrap()
        .boost_with_resilience(3, 1)
        .unwrap()
        .build()
        .unwrap()
}

fn main() {
    println!("# E5 / §5 — pulling-model message complexity and failure rates\n");

    // --- Series 1: pulls per node per round. ------------------------------
    println!("Pulls per correct node per round (message complexity):");
    let m = 9;
    let stacks: Vec<(&str, Algorithm)> = vec![
        (
            "A(4,1)",
            CounterBuilder::corollary1(1, 8).unwrap().build().unwrap(),
        ),
        (
            "A(12,3)",
            CounterBuilder::corollary1(1, 2)
                .unwrap()
                .boost(3)
                .unwrap()
                .build()
                .unwrap(),
        ),
        (
            "A(36,7)",
            CounterBuilder::corollary1(1, 2)
                .unwrap()
                .boost(3)
                .unwrap()
                .boost(3)
                .unwrap()
                .build()
                .unwrap(),
        ),
    ];
    let mut rows = Vec::new();
    for (label, algo) in &stacks {
        use sc_protocol::SyncProtocol as _;
        let full = PullCounter::from_algorithm(algo, Sampling::Full).unwrap();
        let sampled = PullCounter::from_algorithm(
            algo,
            Sampling::Sampled {
                m,
                king_mode: KingPullMode::All,
                fixed_seed: None,
            },
        )
        .unwrap();
        rows.push(vec![
            label.to_string(),
            algo.n().to_string(),
            full.plan_len().to_string(),
            sampled.plan_len().to_string(),
            format!(
                "{:.2}",
                full.plan_len() as f64 / sampled.plan_len().max(1) as f64
            ),
        ]);
    }
    print_table(
        &["stack", "N", "full pulls", "sampled pulls (M=9)", "ratio"],
        &rows,
    );
    println!(
        "\nSampled pulls grow with the number of levels and blocks (k·M+M+F+2 \
         per level), not with N — the polylog claim of Corollary 4.\n"
    );

    // --- Series 2: failure rate vs sample size M (Lemma 8). --------------
    println!("Post-stabilisation per-round failure rate vs M (A(12,1), 1 Byzantine):");
    let algo = a12_f1();
    let mut rows = Vec::new();
    for m in [5usize, 9, 15, 27] {
        let pc = PullCounter::from_algorithm(
            &algo,
            Sampling::Sampled {
                m,
                king_mode: KingPullMode::All,
                fixed_seed: None,
            },
        )
        .unwrap();
        let bound = pc.stabilization_bound();
        let mut rates = Vec::new();
        let mut stabilized = 0usize;
        let runs = 4;
        for seed in 0..runs {
            let sampler = |node: NodeId, rng: &mut SmallRng| pc.random_state(node, rng);
            let adv = adversaries::random_from(sampler, [5], seed);
            let pulled = Pulled::new(&pc);
            let mut sim = Simulation::new(&pulled, adv, seed);
            let trace = sim.run_trace(bound + 768);
            if let Some(start) = first_stable_window(&trace, pc.modulus(), 32) {
                stabilized += 1;
                rates.push(violation_rate(&trace, pc.modulus(), start));
            }
        }
        let rate_cell = if rates.is_empty() {
            "n/a (never stabilised)".to_string()
        } else {
            format!("{:.4}", rates.iter().sum::<f64>() / rates.len() as f64)
        };
        rows.push(vec![
            m.to_string(),
            format!("{stabilized}/{runs}"),
            rate_cell,
            pc.plan_len().to_string(),
        ]);
    }
    print_table(&["M", "stabilised", "failure rate", "pulls/round"], &rows);
    println!("\nThe failure rate falls with M (Lemma 8); at M = N it is exactly 0.\n");

    // --- Series 3: pseudo-random variant (Corollary 5). -------------------
    println!("Pseudo-random variant (fixed samples, oblivious adversary):");
    let mut ok = 0usize;
    let mut deterministic_after = 0usize;
    let trials = 10u64;
    for sampling_seed in 0..trials {
        let pc = PullCounter::from_algorithm(
            &algo,
            Sampling::Sampled {
                m: 15,
                king_mode: KingPullMode::All,
                fixed_seed: Some(sampling_seed),
            },
        )
        .unwrap();
        let sampler = |node: NodeId, rng: &mut SmallRng| pc.random_state(node, rng);
        let adv = adversaries::random_from(sampler, [5], 7);
        let pulled = Pulled::new(&pc);
        let mut sim = Simulation::new(&pulled, adv, 100 + sampling_seed);
        let bound = pc.stabilization_bound();
        let trace = sim.run_trace(bound + 512);
        if let Some(start) = first_stable_window(&trace, pc.modulus(), 32) {
            ok += 1;
            if violation_rate(&trace, pc.modulus(), start) == 0.0 {
                deterministic_after += 1;
            }
        }
    }
    println!(
        "  {ok}/{trials} sampling seeds stabilised; {deterministic_after}/{ok} \
         then counted without any further glitch (Corollary 5: whp the fixed \
         samples are good, and then correctness is deterministic)."
    );
}
