//! E6 — Table 2 / Lemmas 4–5: the phase-king substrate.
//!
//! Grid of one-shot consensus runs over (N, F): agreement and validity must
//! hold whenever `F < N/3`, for every fault position and strategy. The
//! tightness of the bound is demonstrated by letting the adversary corrupt
//! `F+1` nodes while the protocol is parameterised for `F` — disagreement
//! then becomes reachable.

use sc_bench::print_table;
use sc_consensus::{run_consensus, PhaseKing};
use sc_sim::adversaries;

fn main() {
    println!("# E6 / Table 2 — phase-king consensus grid\n");

    println!("Agreement + validity for F < N/3 (all fault positions × strategies × seeds):");
    let mut rows = Vec::new();
    for (n, f) in [(4usize, 1usize), (7, 2), (10, 3), (13, 4)] {
        let pk = PhaseKing::new(n, f, 4).unwrap();
        let mut runs = 0u64;
        let mut agreed = 0u64;
        let mut valid = 0u64;
        let inputs: Vec<u64> = (0..n as u64).map(|v| v % 4).collect();
        let unanimous: Vec<u64> = vec![3; n];
        for first_fault in 0..(n - f + 1).min(4) {
            let faulty: Vec<usize> = (first_fault..first_fault + f).collect();
            for seed in 0..3u64 {
                // Mixed inputs: agreement required.
                let adv = adversaries::random(&pk, faulty.iter().copied(), seed);
                let d = run_consensus(&pk, &inputs, adv, seed);
                runs += 1;
                agreed += u64::from(d.windows(2).all(|w| w[0] == w[1]));
                // Unanimous inputs: validity required.
                let adv = adversaries::two_faced(&pk, faulty.iter().copied(), seed);
                let d = run_consensus(&pk, &unanimous, adv, seed);
                runs += 1;
                valid += u64::from(d.iter().all(|&x| x == 3));
            }
        }
        rows.push(vec![
            n.to_string(),
            f.to_string(),
            format!("3(F+1) = {}", pk.rounds()),
            format!("{agreed}/{}", runs / 2),
            format!("{valid}/{}", runs / 2),
        ]);
        assert_eq!(agreed, runs / 2, "agreement violated for N={n}, F={f}");
        assert_eq!(valid, runs / 2, "validity violated for N={n}, F={f}");
    }
    print_table(&["N", "F", "rounds", "agreement", "validity"], &rows);

    println!("\nTightness at F ≥ N/3 (protocol sized for F, adversary uses F+1):");
    let pk = PhaseKing::new(4, 1, 2).unwrap();
    let mut broken = 0;
    let trials = 200u64;
    for seed in 0..trials {
        // 2 > F = 1 corruptions; the surviving correct nodes {0, 3} have
        // different receiver parities, so the equivocator can feed each camp
        // a face supporting its own value.
        let adv = adversaries::two_faced(&pk, [1, 2], seed);
        let d = run_consensus(&pk, &[0, 1, 1, 1], adv, seed);
        if d.windows(2).any(|w| w[0] != w[1]) {
            broken += 1;
        }
    }
    println!(
        "  with 2 corruptions against an F = 1 protocol, {broken}/{trials} runs \
         lost agreement (expected > 0: N > 3F is necessary [9])"
    );
    assert!(
        broken > 0,
        "over-corruption never broke agreement; thresholds too lax?"
    );
}
