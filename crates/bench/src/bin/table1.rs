//! E1 — regenerates **Table 1**: summary of synchronous 2-counting
//! algorithms (resilience, stabilisation time, state bits, deterministic?).
//!
//! Measured rows are produced by running the actual algorithms over the
//! full adversary suite; paper rows that are out of scope (the \[2\] baseline
//! and the intricate randomised algorithms of \[5\]) are printed from the
//! paper for comparison and marked as such. Absolute constants are ours;
//! the *shape* — deterministic linear-in-f time at polylogarithmic space
//! versus exponential-time randomised at minimal space versus
//! super-exponential optimal-resilience — is the reproduction target.

use sc_baselines::RandomizedCounter;
use sc_bench::{measure_stabilization, print_table, summarize};
use sc_core::CounterBuilder;
use sc_protocol::{Counter as _, SyncProtocol as _};
use sc_sim::{adversaries, Simulation};

fn main() {
    println!("# E1 / Table 1 — synchronous 2-counting algorithms\n");
    let seeds: Vec<u64> = (0..4).collect();
    let mut rows: Vec<Vec<String>> = Vec::new();

    // --- Paper-only rows (not implemented; printed for comparison). ------
    rows.push(vec![
        "f < n/3 [2] (paper)".into(),
        "O(f)".into(),
        "O(f log f)".into(),
        "yes".into(),
        "paper row; full DH07 out of scope (DESIGN.md §4)".into(),
    ]);
    rows.push(vec![
        "f < n/3 [5] rand (paper)".into(),
        "min{2^(2f+2)+1, 2^O(f²/n)}".into(),
        "1".into(),
        "no".into(),
        "paper row; intricate randomised variant not rebuilt".into(),
    ]);

    // --- Randomised baseline ([6,7]-style), measured. ---------------------
    for (n, f) in [(4usize, 1usize), (7, 2)] {
        let r = RandomizedCounter::new(n, f, 2).unwrap();
        let mut worst = 0u64;
        let mut total = 0u64;
        let runs = 8;
        for seed in 0..runs {
            let adv = adversaries::two_faced(&r, (0..f).collect::<Vec<_>>(), seed);
            let mut sim = Simulation::new(&r, adv, seed);
            let report = sim
                .run_until_stable(4096)
                .expect("randomised baseline stabilises");
            worst = worst.max(report.stabilization_round);
            total += report.stabilization_round;
        }
        rows.push(vec![
            format!("f={f}, n={n} [6,7]-style (measured)"),
            format!(
                "{:.1} mean / {worst} worst (exp. bound {})",
                total as f64 / runs as f64,
                r.expected_stabilization()
            ),
            format!("{}", r.state_bits()),
            "no".into(),
            "randomised quorum-follow baseline".into(),
        ]);
    }

    // --- Corollary 1 (optimal resilience), measured for f = 1. -----------
    let a4 = CounterBuilder::corollary1(1, 2).unwrap().build().unwrap();
    let results = measure_stabilization(&a4, &[1], &seeds, 64);
    let s = summarize(&results);
    rows.push(vec![
        format!("f=1, n=4 Cor. 1 (measured)"),
        format!(
            "{:.0} mean / {} worst ≤ {} bound",
            s.mean,
            s.worst,
            a4.stabilization_bound()
        ),
        format!("{}", a4.state_bits()),
        "yes".into(),
        "optimal resilience, f^O(f) bound".into(),
    ]);

    // --- This work: boosted recursion, measured. --------------------------
    let stacks: Vec<(String, Vec<usize>)> = vec![
        ("A(12,3)".into(), vec![0, 1, 4]), // one faulty block + spread
        ("A(36,7)".into(), vec![0, 1, 2, 3, 4, 12, 24]), // block 0 fully faulty
    ];
    let algos = vec![
        CounterBuilder::corollary1(1, 2)
            .unwrap()
            .boost(3)
            .unwrap()
            .build()
            .unwrap(),
        CounterBuilder::corollary1(1, 2)
            .unwrap()
            .boost(3)
            .unwrap()
            .boost(3)
            .unwrap()
            .build()
            .unwrap(),
    ];
    for ((label, faulty), algo) in stacks.into_iter().zip(&algos) {
        let results = measure_stabilization(algo, &faulty, &seeds, 64);
        let s = summarize(&results);
        rows.push(vec![
            format!(
                "f={}, n={} this work (measured)",
                algo.resilience(),
                algo.n()
            ),
            format!(
                "{:.0} mean / {} worst ≤ {} bound",
                s.mean,
                s.worst,
                algo.stabilization_bound()
            ),
            format!("{}", algo.state_bits()),
            "yes".into(),
            format!("{label}, {} runs over full adversary suite", s.runs),
        ]);
    }

    // --- This work, analytic rows for larger f (Theorem 2 plans). --------
    for levels in [3usize, 4] {
        let plan = CounterBuilder::theorem2(4, levels, 2)
            .unwrap()
            .plan()
            .unwrap();
        let top = plan.last().unwrap();
        rows.push(vec![
            format!("f={}, n={} this work (bound)", top.f, top.n),
            format!("{} rounds (= O(f))", top.time_bound),
            format!("{}", top.state_bits),
            "yes".into(),
            format!("Theorem 2 plan, k=4, {levels} levels"),
        ]);
    }

    print_table(
        &[
            "algorithm (resilience)",
            "stabilisation time",
            "state bits",
            "det.",
            "notes",
        ],
        &rows,
    );

    // Shape check printed for EXPERIMENTS.md.
    println!("\nShape checks:");
    let t12 = algos[0].stabilization_bound() as f64 / algos[0].resilience() as f64;
    let t36 = algos[1].stabilization_bound() as f64 / algos[1].resilience() as f64;
    println!(
        "- linear time: bound/f is {t12:.0} at f=3 vs {t36:.0} at f=7 \
         (flat ⇒ linear; the baseline's 2^(n-f) is exponential)"
    );
    println!(
        "- space: {} bits at f=3 vs {} bits at f=7 vs 1 bit randomised \
         (polylog growth)",
        algos[0].state_bits(),
        algos[1].state_bits()
    );
}
