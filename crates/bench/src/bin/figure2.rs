//! E3 — regenerates **Figure 2**: the recursive construction
//! `A(4,1) → A(12,3) → A(36,7)` with k = 3 blocks per level.
//!
//! Prints the block tree with an adversarial fault placement (one faulty
//! block per level plus spread faults, as in the paper's picture), then
//! measures the stabilisation of every level of the stack against its
//! Theorem 1 bound.

use sc_bench::{measure_stabilization, print_table, summarize};
use sc_core::CounterBuilder;
use sc_protocol::{Counter as _, SyncProtocol as _};

fn main() {
    println!("# E3 / Figure 2 — recursive application with k = 3 blocks\n");

    let builder = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .boost(3)
        .unwrap();
    let plans = builder.plan().unwrap();
    println!("Construction plan (modulus chain derived bottom-up):");
    print_table(
        &["level", "n", "f", "k", "modulus C", "S bits", "T bound"],
        &plans
            .iter()
            .map(|p| {
                vec![
                    p.level.to_string(),
                    p.n.to_string(),
                    p.f.to_string(),
                    p.k.to_string(),
                    p.modulus.to_string(),
                    p.state_bits.to_string(),
                    p.time_bound.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // The paper's picture: F = 7 faults on 36 nodes — block 0 of the top
    // level (= nodes 0..12) gets 4 faults (faulty block), the rest spread.
    let faulty = [0usize, 1, 2, 3, 4, 12, 24];
    println!("\nFault placement (x = Byzantine):");
    for top_block in 0..3 {
        let mut line = format!("  A(12,3) block {top_block}: ");
        for mid in 0..3 {
            line.push('[');
            for j in 0..4 {
                let v = top_block * 12 + mid * 4 + j;
                line.push(if faulty.contains(&v) { 'x' } else { 'o' });
            }
            line.push_str("] ");
        }
        println!("{line}");
    }

    // Measure each level of the stack.
    println!("\nMeasured stabilisation vs proven bound (full adversary suite):");
    let seeds: Vec<u64> = (0..3).collect();
    let levels: Vec<(&str, sc_core::Algorithm, Vec<usize>)> = vec![
        (
            "A(4,1)",
            CounterBuilder::corollary1(1, 2).unwrap().build().unwrap(),
            vec![1],
        ),
        (
            "A(12,3)",
            CounterBuilder::corollary1(1, 2)
                .unwrap()
                .boost(3)
                .unwrap()
                .build()
                .unwrap(),
            vec![0, 1, 4],
        ),
        ("A(36,7)", builder.build().unwrap(), faulty.to_vec()),
    ];
    let mut rows = Vec::new();
    for (label, algo, faults) in &levels {
        let results = measure_stabilization(algo, faults, &seeds, 64);
        let s = summarize(&results);
        rows.push(vec![
            label.to_string(),
            algo.n().to_string(),
            algo.resilience().to_string(),
            format!("{:.0}", s.mean),
            s.worst.to_string(),
            algo.stabilization_bound().to_string(),
            s.runs.to_string(),
        ]);
    }
    print_table(
        &[
            "counter",
            "N",
            "F",
            "mean stab.",
            "worst stab.",
            "bound",
            "runs",
        ],
        &rows,
    );
    println!("\nEvery run stabilised within the Theorem 1 bound (asserted).");
}
