//! E4 — the scaling claims of Theorems 2–3 (the "this work" row of
//! Table 1): stabilisation time linear in `f`, state polylogarithmic in `f`.
//!
//! Measures a k = 3 stack at f = 1, 3, 7, 15 and prints the analytic plans
//! of the fixed-k (Theorem 2) and varying-k (Theorem 3) schedules as an
//! ablation of the schedule choice.

use sc_bench::{measure_stabilization, print_table, summarize};
use sc_core::CounterBuilder;
use sc_protocol::{Counter as _, SyncProtocol as _};

fn main() {
    println!("# E4 — scaling in f (Theorems 2–3)\n");

    // --- Measured sweep: k = 3 stack, one faulty block per level. --------
    println!("Measured (k = 3 recursion, random + bad-king adversaries):");
    let mut rows = Vec::new();
    let mut builder = CounterBuilder::corollary1(1, 2).unwrap();
    let mut measured: Vec<(usize, u64, u32)> = Vec::new();
    for level in 0..3 {
        let algo = builder.build().unwrap();
        let (n, f) = (algo.n(), algo.resilience());
        // One faulty block (f_inner+1 faults) + the rest spread, the worst
        // placement the bound allows.
        let block = n / 3;
        let faults: Vec<usize> = if f == 1 {
            vec![1]
        } else {
            let inner_f = (f - 1) / 2; // f = 2·f_inner + 1 on this schedule
            let mut v: Vec<usize> = (0..=inner_f).collect(); // block 0 faulty
            let mut pos = block;
            while v.len() < f {
                v.push(pos);
                pos += 1;
            }
            v
        };
        let seeds: Vec<u64> = (0..2).collect();
        let results = measure_stabilization(&algo, &faults, &seeds, 64);
        let s = summarize(&results);
        let bound = algo.stabilization_bound();
        rows.push(vec![
            f.to_string(),
            n.to_string(),
            format!("{:.0}", s.mean),
            s.worst.to_string(),
            bound.to_string(),
            format!("{:.0}", bound as f64 / f as f64),
            algo.state_bits().to_string(),
        ]);
        measured.push((f, bound, algo.state_bits()));
        if level < 2 {
            builder = builder.boost(3).unwrap();
        }
    }
    // Larger stacks: analytic rows (simulating N = 108 for ~8k rounds per
    // run across the whole suite is minutes of work; the bound is exact).
    for extra in [1usize, 2] {
        let mut b = CounterBuilder::corollary1(1, 2)
            .unwrap()
            .boost(3)
            .unwrap()
            .boost(3)
            .unwrap();
        for _ in 0..extra {
            b = b.boost(3).unwrap();
        }
        let plan = b.plan().unwrap();
        let top = plan.last().unwrap();
        rows.push(vec![
            top.f.to_string(),
            top.n.to_string(),
            "(analytic)".into(),
            "(analytic)".into(),
            top.time_bound.to_string(),
            format!("{:.0}", top.time_bound as f64 / top.f as f64),
            top.state_bits.to_string(),
        ]);
        measured.push((top.f, top.time_bound, top.state_bits));
    }
    print_table(
        &[
            "f",
            "n",
            "mean stab.",
            "worst stab.",
            "T bound",
            "bound/f",
            "S bits",
        ],
        &rows,
    );

    // Shape assertion: T(f) = a·f + b is linear iff the *marginal* cost
    // ΔT/Δf stays within a constant band (T/f itself is dominated by the
    // base constant b at small f).
    let slopes: Vec<f64> = measured
        .windows(2)
        .map(|w| (w[1].1 - w[0].1) as f64 / (w[1].0 - w[0].0) as f64)
        .collect();
    let spread = slopes.iter().cloned().fold(f64::MIN, f64::max)
        / slopes.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "\nmarginal cost ΔT/Δf across the sweep: {:?} (spread {spread:.2}×; \
         flat ⇒ T = O(f))",
        slopes.iter().map(|s| *s as u64).collect::<Vec<_>>()
    );
    assert!(spread < 1.5, "stabilisation bound is not linear in f");

    // --- Ablation: schedules (analytic plans). ----------------------------
    println!("\nAblation — schedule choice (analytic plans, top level each):");
    let mut rows = Vec::new();
    for (label, plan) in [
        (
            "Theorem 2, k=3 ×4",
            CounterBuilder::theorem2(3, 4, 2).unwrap().plan().unwrap(),
        ),
        (
            "Theorem 2, k=4 ×4",
            CounterBuilder::theorem2(4, 4, 2).unwrap().plan().unwrap(),
        ),
        (
            "Theorem 2, k=6 ×3",
            CounterBuilder::theorem2(6, 3, 2).unwrap().plan().unwrap(),
        ),
        (
            "Theorem 3, P=1",
            CounterBuilder::theorem3(1, 2).unwrap().plan().unwrap(),
        ),
        (
            "Corollary 1, f=3",
            CounterBuilder::corollary1(3, 2).unwrap().plan().unwrap(),
        ),
        (
            "Corollary 1, f=4",
            CounterBuilder::corollary1(4, 2).unwrap().plan().unwrap(),
        ),
    ] {
        let top = plan.last().unwrap();
        rows.push(vec![
            label.to_string(),
            top.n.to_string(),
            top.f.to_string(),
            format!("{:.3}", top.f as f64 / top.n as f64),
            top.time_bound.to_string(),
            top.state_bits.to_string(),
        ]);
    }
    print_table(&["schedule", "n", "f", "f/n", "T bound", "S bits"], &rows);
    println!(
        "\nReading: larger k per level buys resilience density (f/n) at a \
         steep (2m)^k time cost per level; Corollary 1's flat schedule is \
         super-exponential in f (the f^O(f) of the paper) while the \
         recursive schedules stay linear in f."
    );
}
