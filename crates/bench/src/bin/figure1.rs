//! E2 — regenerates **Figure 1**: after stabilisation, the leader pointers
//! `b[i]` of all non-faulty blocks coincide on every candidate `β ∈ [m]`
//! for at least `τ` consecutive rounds within one period (Lemmas 1–2).
//!
//! We run the real construction — `k` single-node blocks over the trivial
//! counter, exactly the Corollary 1 topology — from a random configuration,
//! record each block's decoded pointer per round, and print the dwell
//! segments plus the detected common windows.

use sc_core::{CounterBuilder, CounterState};
use sc_protocol::{Counter as _, Interval, NodeId, SyncProtocol as _};
use sc_sim::{adversaries, Batch, Scenario, Simulation};

fn main() {
    // k = 6 blocks ⇒ m = 3 leader candidates and base 2m = 6 as in the
    // paper's picture; F = 1 keeps τ = 9 small.
    let algo = CounterBuilder::trivial()
        .with_modulus(2)
        .boost_with_resilience(6, 1)
        .unwrap()
        .build()
        .unwrap();
    let boosted = algo.as_boosted_counter().unwrap();
    let p = boosted.params().clone();
    println!("# E2 / Figure 1 — leader pointers coincide\n");
    println!(
        "k = {} blocks, m = {} candidates, τ = {}, block i counts mod τ·(2m)^(i+1)\n",
        p.k(),
        p.m(),
        p.tau()
    );

    let faulty = [2usize]; // block 2 is faulty (single-node blocks)
    let adv = adversaries::random(&algo, faulty, 7);
    let mut sim = Simulation::new(&algo, adv, 99);

    // Let every inner counter stabilise (trivial: instant) and warm the
    // system up, then record one full top-block period.
    let horizon = p.block_modulus(p.k() - 1);
    let mut pointers: Vec<Vec<usize>> = vec![Vec::new(); p.k()];
    for _ in 0..horizon {
        for block in 0..p.k() {
            let node = p.member(block, 0);
            if faulty.contains(&node.index()) {
                pointers[block].push(usize::MAX); // faulty block: no data
                continue;
            }
            let state: &CounterState = &sim.states()[node.index()];
            let value = boosted
                .inner()
                .output(NodeId::new(0), state.as_boosted_inner());
            pointers[block].push(p.pointer(block, value).b);
        }
        sim.step();
    }

    // Print the dwell segments of the first few blocks (the paper's strip
    // diagram), compressed as value×length runs.
    println!("Pointer timelines (value×rounds, first 12 segments per block):");
    for block in 0..p.k() {
        let series = &pointers[block];
        if series[0] == usize::MAX {
            println!("  block {block}: FAULTY");
            continue;
        }
        let mut segments: Vec<(usize, u64)> = Vec::new();
        for &b in series {
            match segments.last_mut() {
                Some((v, len)) if *v == b => *len += 1,
                _ => segments.push((b, 1)),
            }
        }
        let shown: Vec<String> = segments
            .iter()
            .take(12)
            .map(|(v, l)| format!("{v}×{l}"))
            .collect();
        println!("  block {block}: {}", shown.join("  "));
    }

    // Detect, for every β ∈ [m], the common windows across non-faulty
    // blocks, and verify the Lemma 2 claim: some window of length ≥ τ.
    println!("\nCommon-leader windows (all non-faulty blocks point at β):");
    let honest_blocks: Vec<usize> = (0..p.k())
        .filter(|b| pointers[*b][0] != usize::MAX)
        .collect();
    for beta in 0..p.m() {
        let mut windows: Vec<Interval> = Vec::new();
        let mut start: Option<u64> = None;
        for t in 0..horizon {
            let common = honest_blocks
                .iter()
                .all(|&b| pointers[b][t as usize] == beta);
            match (common, start) {
                (true, None) => start = Some(t),
                (false, Some(s)) => {
                    windows.push(Interval::new(s, t));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            windows.push(Interval::new(s, horizon));
        }
        let longest = windows.iter().map(Interval::len).max().unwrap_or(0);
        let ok = longest >= p.tau();
        println!(
            "  β = {beta}: {} windows, longest {} rounds (τ = {}) {}",
            windows.len(),
            longest,
            p.tau(),
            if ok {
                "✓ Lemma 2 holds"
            } else {
                "✗ VIOLATION"
            }
        );
        assert!(ok, "Lemma 2 violated for β = {beta}");
    }
    println!("\nAll candidates reached a common window of ≥ τ rounds within one period.");

    // Cross-check: the pointer picture above is one execution; sweep many
    // seeds of the same topology through the batch engine and confirm that
    // stabilisation (which Lemmas 1–2 feed into) holds throughout.
    let scenarios = Scenario::seeds(0..16);
    let report = Batch::new(&algo, algo.stabilization_bound() + 64)
        .run(&scenarios, |s: &Scenario<CounterState>| {
            adversaries::random(&algo, faulty, s.seed)
        });
    let summary = report.summary();
    assert!(
        report.all_stabilized() && summary.worst <= algo.stabilization_bound(),
        "stabilisation sweep contradicts the pointer analysis"
    );
    println!(
        "Sweep: {}/{} seeds stabilised, worst round {} ≤ bound {}.",
        summary.stabilized,
        summary.runs,
        summary.worst,
        algo.stabilization_bound()
    );
}
