//! E7 — the algorithm-synthesis pipeline of [4, 5]: exhaustive verification
//! of small counters and stochastic synthesis.
//!
//! Regenerates the context for Table 1's computer-designed rows: exact
//! worst-case stabilisation times for small verified algorithms, failure
//! witnesses for broken ones, and a budgeted search report for the
//! `n = 4, f = 1` instance the paper's companion works solved with SAT
//! solvers.

use sc_attack::AttackPreFilter;
use sc_bench::print_table;
use sc_core::{LutCounter, LutSpec};
use sc_verifier::{
    sweep_family, synthesize, verify, Analyzer, SweepCheckpoint, SymmetricFamily, SynthesisOutcome,
    Verdict,
};

fn main() {
    println!("# E7 — verification and synthesis of small counters\n");

    // --- Exact verification of hand-written tables. -----------------------
    println!("Exhaustive verification (all fault sets × all Byzantine behaviours):");
    let mut rows = Vec::new();

    let trivial = LutCounter::new(LutSpec {
        n: 1,
        f: 0,
        c: 2,
        states: 2,
        transition: vec![vec![1, 0]],
        output: vec![vec![0, 1]],
        stabilization_bound: 0,
    })
    .unwrap();
    rows.push(describe("trivial 1-node 2-counter", &trivial));

    let follow_leader = LutCounter::new(LutSpec {
        n: 2,
        f: 0,
        c: 2,
        states: 2,
        transition: vec![vec![1, 0, 1, 0], vec![1, 0, 1, 0]],
        output: vec![vec![0, 1], vec![0, 1]],
        stabilization_bound: 1,
    })
    .unwrap();
    rows.push(describe("2-node follow-leader", &follow_leader));

    let frozen = LutCounter::new(LutSpec {
        n: 2,
        f: 0,
        c: 2,
        states: 2,
        transition: vec![vec![0, 1, 0, 1], vec![0, 0, 1, 1]],
        output: vec![vec![0, 1], vec![0, 1]],
        stabilization_bound: 0,
    })
    .unwrap();
    rows.push(describe("2-node frozen (broken)", &frozen));

    // Quorumless max-following with a Byzantine node: must fail.
    let rows16: Vec<u8> = (0..16u32)
        .map(|index| {
            let max = (0..4).map(|u| (index >> u & 1) as u8).max().unwrap();
            (max + 1) % 2
        })
        .collect();
    let follow_max = LutCounter::new(LutSpec {
        n: 4,
        f: 1,
        c: 2,
        states: 2,
        transition: vec![rows16.clone(), rows16.clone(), rows16.clone(), rows16],
        output: vec![vec![0, 1]; 4],
        stabilization_bound: 0,
    })
    .unwrap();
    rows.push(describe("4-node follow-max, f=1 (broken)", &follow_max));

    print_table(&["algorithm", "verdict", "exact worst-case time"], &rows);

    // --- Synthesis. --------------------------------------------------------
    println!("\nStochastic synthesis (hill-climbing on attractor coverage):");
    let mut rows = Vec::new();
    for (label, n, f, c, states, budget) in [
        ("n=1, f=0, c=2, |X|=2", 1usize, 0usize, 2u64, 2u8, 500u64),
        ("n=2, f=0, c=2, |X|=2", 2, 0, 2, 2, 5_000),
        ("n=2, f=0, c=4, |X|=4", 2, 0, 4, 4, 20_000),
        ("n=4, f=1, c=2, |X|=2", 4, 1, 2, 2, 20_000),
        ("n=4, f=1, c=2, |X|=3", 4, 1, 2, 3, 20_000),
    ] {
        let report = synthesize(n, f, c, states, 42, budget).unwrap();
        let outcome = match &report.outcome {
            SynthesisOutcome::Found {
                worst_case_time, ..
            } => {
                format!("FOUND, verified T = {worst_case_time}")
            }
            SynthesisOutcome::Exhausted { best_coverage } => {
                format!("exhausted, best coverage {best_coverage:.3}")
            }
        };
        rows.push(vec![
            label.to_string(),
            report.evaluations.to_string(),
            outcome,
        ]);
    }
    print_table(&["instance", "evaluations", "outcome"], &rows);
    println!(
        "\nThe f = 1 instances reproduce the *pipeline* of [4, 5]; solving them \
         needed SAT-scale search there (the paper cites computer-designed \
         3-state algorithms for n ≥ 4), so a small stochastic budget reporting \
         high-but-incomplete coverage is the expected outcome."
    );

    // --- The n = 5 campaign: pre-filter + orbit quotient, end to end. -----
    println!(
        "\nExhaustive n = 5, f = 1 family sweep (attack pre-filter + orbit \
         quotient):"
    );
    let family = SymmetricFamily::new(5, 1, 2, 2).unwrap();
    let mut filter = AttackPreFilter::new(4, 3, 48, 9);
    let mut analyzer = Analyzer::new();
    analyzer.dedup_fault_sets(true);
    let mut checkpoint = SweepCheckpoint::new();
    sweep_family(
        &family,
        &mut filter,
        &mut analyzer,
        &mut checkpoint,
        u64::MAX,
    )
    .unwrap();
    let ledger = checkpoint.ledger;
    print_table(
        &[
            "family",
            "screened",
            "filtered",
            "survivors",
            "verified",
            "found",
        ],
        &[vec![
            format!(
                "n=5 f=1 |X|=2 ({} classes, {} candidates)",
                family.classes(),
                family.len().unwrap()
            ),
            ledger.screened.to_string(),
            ledger.filtered.to_string(),
            ledger.survivors.to_string(),
            ledger.verified.to_string(),
            ledger.found.to_string(),
        ]],
    );
    println!(
        "\nEvery candidate a budgeted scripted-attack search provably breaks is \
         discarded before the exhaustive pass (the filter may only reject — \
         survivors are still decided by the quotient verifier, so the found \
         set is exactly what an unfiltered sweep finds). No 2-state 1-resilient \
         5-node counter in this family is the expected outcome; the pipeline \
         end-to-end is the result."
    );
}

fn describe(label: &str, lut: &LutCounter) -> Vec<String> {
    match verify(lut).unwrap() {
        Verdict::Stabilizes { worst_case_time } => {
            vec![
                label.to_string(),
                "self-stabilising ✓".into(),
                worst_case_time.to_string(),
            ]
        }
        Verdict::Fails {
            fault_set,
            stuck_configs,
            witness,
        } => vec![
            label.to_string(),
            format!("FAILS (fault set {fault_set:?})"),
            format!(
                "{stuck_configs} stuck configs; witness lasso of {} steps",
                witness.byz.len()
            ),
        ],
    }
}
