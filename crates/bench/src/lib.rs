//! Shared measurement helpers for the experiment harness (E1–E7).
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper (see `DESIGN.md` §3 for the experiment index); the Criterion
//! benches in `benches/` measure the performance of the implementation
//! itself. Both build on the helpers here: a standard adversary suite, a
//! stabilisation-measurement loop, and a markdown table printer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sc_core::{adversaries as core_adv, Algorithm, CounterState, LutCounter, LutSpec};
use sc_protocol::Counter as _;
use sc_sim::{adversaries, Adversary, Batch, Scenario};

/// The canonical beyond-seed-limits verifier instance: 16 states on 4
/// fault-free nodes (`16^4 = 65536` configurations), everyone following
/// node 0's value + 1 mod 16 — rejected by `sc_verifier::reference`'s seed
/// limits, decided by the bitset game core. Shared by the `verifier` and
/// `throughput` benches so the CI gate and the micro-benches measure the
/// same instance.
pub fn sixteen_state_instance() -> LutCounter {
    let rows: Vec<u8> = (0..65536u32)
        .map(|index| ((index % 16) + 1) as u8 % 16)
        .collect();
    LutCounter::new(LutSpec {
        n: 4,
        f: 0,
        c: 16,
        states: 16,
        transition: vec![rows.clone(), rows.clone(), rows.clone(), rows],
        output: vec![(0..16u64).collect(); 4],
        stabilization_bound: 1,
    })
    .expect("the 16-state follow-leader table is well-formed")
}

/// A constructor producing a fresh adversary instance for a given seed.
///
/// Factories are `Send + Sync` so measurement sweeps can fan strategies out
/// across threads (the produced adversaries stay on their worker thread).
pub type AdversaryFactory<'a> =
    Box<dyn Fn(u64) -> Box<dyn Adversary<CounterState> + 'a> + Send + Sync + 'a>;

/// The standard stress suite: one factory per qualitatively different
/// Byzantine strategy, all corrupting the same `faulty` set.
pub fn adversary_suite<'a>(
    algo: &'a Algorithm,
    faulty: &'a [usize],
) -> Vec<(&'static str, AdversaryFactory<'a>)> {
    if faulty.is_empty() {
        let none: AdversaryFactory<'a> = Box::new(|_| Box::new(adversaries::none()));
        return vec![("fault-free", none)];
    }
    let suite: Vec<(&'static str, AdversaryFactory<'a>)> = vec![
        (
            "crash",
            Box::new(move |seed| Box::new(adversaries::crash(algo, faulty.iter().copied(), seed))),
        ),
        (
            "random",
            Box::new(move |seed| Box::new(adversaries::random(algo, faulty.iter().copied(), seed))),
        ),
        (
            "two-faced",
            Box::new(move |seed| {
                Box::new(adversaries::two_faced(algo, faulty.iter().copied(), seed))
            }),
        ),
        (
            "replay",
            Box::new(move |_| Box::new(adversaries::replay(faulty.iter().copied(), 3))),
        ),
        (
            "bad-king",
            Box::new(move |seed| Box::new(core_adv::bad_king(algo, faulty.iter().copied(), seed))),
        ),
        (
            "pointer-split",
            Box::new(move |seed| {
                Box::new(core_adv::pointer_split(algo, faulty.iter().copied(), seed))
            }),
        ),
    ];
    suite
}

/// One measured stabilisation run.
#[derive(Clone, Copy, Debug)]
pub struct RunResult {
    /// Strategy name from [`adversary_suite`].
    pub strategy: &'static str,
    /// Seed of the initial configuration and adversary randomness.
    pub seed: u64,
    /// Observed stabilisation round.
    pub stabilization: u64,
}

/// Summary statistics over a batch of runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    /// Worst observed stabilisation round.
    pub worst: u64,
    /// Mean observed stabilisation round.
    pub mean: f64,
    /// Number of runs.
    pub runs: usize,
}

/// Measures the stabilisation time of `algo` over the whole adversary suite
/// and all `seeds`, asserting the proven bound on every run. Each strategy's
/// seed sweep runs as one [`Batch`] on the zero-copy engine, which fans the
/// independent scenarios out across worker threads.
///
/// # Panics
///
/// Panics if any run fails to stabilise within `bound + margin` rounds or
/// stabilises later than the proven bound — either would falsify Theorem 1.
pub fn measure_stabilization(
    algo: &Algorithm,
    faulty: &[usize],
    seeds: &[u64],
    margin: u64,
) -> Vec<RunResult> {
    let bound = algo.stabilization_bound();
    let suite = adversary_suite(algo, faulty);
    let scenarios: Vec<Scenario<CounterState>> = Scenario::seeds(seeds.iter().copied());
    let batch = Batch::new(algo, bound + margin);
    let mut results = Vec::with_capacity(suite.len() * seeds.len());
    for (name, factory) in suite {
        let report = batch.run_prepared(&scenarios, |scenario| factory(scenario.seed));
        for outcome in report.outcomes {
            let seed = outcome.seed;
            let report = outcome
                .result
                .unwrap_or_else(|e| panic!("{name} (seed {seed}) did not stabilise: {e}"));
            assert!(
                report.stabilization_round <= bound,
                "{name} (seed {seed}): {} > proven bound {bound}",
                report.stabilization_round
            );
            results.push(RunResult {
                strategy: name,
                seed,
                stabilization: report.stabilization_round,
            });
        }
    }
    results
}

/// Summarises a batch of [`RunResult`]s.
pub fn summarize(results: &[RunResult]) -> Summary {
    if results.is_empty() {
        return Summary::default();
    }
    let worst = results.iter().map(|r| r.stabilization).max().unwrap_or(0);
    let sum: u64 = results.iter().map(|r| r.stabilization).sum();
    Summary {
        worst,
        mean: sum as f64 / results.len() as f64,
        runs: results.len(),
    }
}

/// Prints a markdown table with aligned columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::CounterBuilder;

    #[test]
    fn suite_and_measurement_work_end_to_end() {
        let algo = CounterBuilder::corollary1(1, 4).unwrap().build().unwrap();
        let results = measure_stabilization(&algo, &[2], &[5], 64);
        assert_eq!(results.len(), 6); // six strategies
        let s = summarize(&results);
        assert!(s.worst <= algo.stabilization_bound());
        assert_eq!(s.runs, 6);
    }

    #[test]
    fn fault_free_suite_is_singleton() {
        let algo = CounterBuilder::corollary1(1, 4).unwrap().build().unwrap();
        assert_eq!(adversary_suite(&algo, &[]).len(), 1);
    }
}
