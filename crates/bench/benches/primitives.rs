//! Micro-benchmarks of the hot primitives: majority votes, tallies,
//! bit-codec round trips, pointer decomposition.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_core::{BoostParams, CounterBuilder};
use sc_protocol::{majority_or, BitVec, Counter as _, NodeId, SyncProtocol as _, Tally};

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    g.sample_size(60).measurement_time(Duration::from_secs(2));

    let mut rng = SmallRng::seed_from_u64(1);
    let values: Vec<u64> = (0..100).map(|_| rng.random_range(0..8u64)).collect();

    g.bench_function("majority_100_values", |b| {
        b.iter(|| black_box(majority_or(values.iter().copied(), 0)))
    });

    g.bench_function("tally_build_and_query_100", |b| {
        b.iter(|| {
            let t: Tally = values.iter().copied().collect();
            black_box((t.count(3), t.min_value_with_count_over(10)))
        })
    });

    let p = BoostParams::new(4, 1, 3, 3, 960, 0).unwrap();
    g.bench_function("pointer_decode", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(977);
            black_box(p.pointer((v % 3) as usize, v % p.c_req()))
        })
    });

    let algo = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    let state = algo.random_state(NodeId::new(5), &mut rng);
    g.bench_function("codec_round_trip_A(12,3)_state", |b| {
        b.iter(|| {
            let mut bits = BitVec::new();
            algo.encode_state(NodeId::new(5), &state, &mut bits);
            black_box(
                algo.decode_state(NodeId::new(5), &mut bits.reader())
                    .unwrap(),
            )
        })
    });

    g.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
