//! E5 / §5 benchmark: round cost of the pulling model — full pulling vs
//! sampled pulling, and plan generation.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_core::CounterBuilder;
use sc_protocol::NodeId;
use sc_pulling::{KingPullMode, PullCounter, PullProtocol, Pulled, Sampling};
use sc_sim::{adversaries, Simulation};

fn bench_pulling(c: &mut Criterion) {
    let mut g = c.benchmark_group("pulling");
    g.sample_size(20).measurement_time(Duration::from_secs(3));

    let algo = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    let full = PullCounter::from_algorithm(&algo, Sampling::Full).unwrap();
    let sampled = PullCounter::from_algorithm(
        &algo,
        Sampling::Sampled {
            m: 9,
            king_mode: KingPullMode::All,
            fixed_seed: None,
        },
    )
    .unwrap();

    let full_pulled = Pulled::new(&full);
    g.bench_function("full_rounds_x10_A(12,3)", |b| {
        let mut sim = Simulation::new(&full_pulled, adversaries::none(), 3);
        b.iter(|| {
            sim.run(10);
            black_box(sim.round())
        })
    });

    let sampled_pulled = Pulled::new(&sampled);
    g.bench_function("sampled_rounds_x10_A(12,3)_M9", |b| {
        let mut sim = Simulation::new(&sampled_pulled, adversaries::none(), 3);
        b.iter(|| {
            sim.run(10);
            black_box(sim.round())
        })
    });

    g.bench_function("plan_generation_sampled", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        let state = sampled.random_state(NodeId::new(5), &mut rng);
        b.iter(|| black_box(sampled.plan(NodeId::new(5), &state, &mut rng)))
    });

    g.finish();
}

criterion_group!(benches, bench_pulling);
criterion_main!(benches);
