//! E6 / Table 2 benchmark: one-shot phase-king consensus throughput.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_consensus::{run_consensus, PhaseKing};
use sc_sim::adversaries;

fn bench_phaseking(c: &mut Criterion) {
    let mut g = c.benchmark_group("phaseking");
    g.sample_size(30).measurement_time(Duration::from_secs(3));

    for (n, f) in [(4usize, 1usize), (7, 2), (13, 4)] {
        let pk = PhaseKing::new(n, f, 8).unwrap();
        let inputs: Vec<u64> = (0..n as u64).map(|v| v % 8).collect();
        let faulty: Vec<usize> = (0..f).collect();
        g.bench_with_input(
            BenchmarkId::new("one_shot", format!("n{n}_f{f}")),
            &pk,
            |b, pk| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let adv = adversaries::random(pk, faulty.iter().copied(), seed);
                    black_box(run_consensus(pk, &inputs, adv, seed))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_phaseking);
criterion_main!(benches);
