//! E2 / Figure 1 benchmark: decoding leader pointers and finding the common
//! windows over a full counter period.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sc_core::BoostParams;

fn bench_figure1(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure1");
    g.sample_size(20).measurement_time(Duration::from_secs(3));

    // Corollary 1 topology: k = 4 single-node blocks, τ = 9, period 2304.
    let p = BoostParams::new(1, 0, 4, 1, 8, 0).unwrap();

    g.bench_function("pointer_decode_full_period", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for v in 0..p.c_req() {
                for block in 0..p.k() {
                    acc += black_box(p.pointer(block, v).b);
                }
            }
            acc
        })
    });

    g.bench_function("common_window_detection", |b| {
        // Offsets model stabilised blocks with arbitrary phases.
        let offsets = [17u64, 900, 1411, 2000];
        b.iter(|| {
            let mut longest = 0u64;
            let mut run = 0u64;
            for t in 0..p.c_req() {
                let b0 = p.pointer(0, offsets[0] + t).b;
                let common = (1..p.k()).all(|i| p.pointer(i, offsets[i] + t).b == b0);
                run = if common { run + 1 } else { 0 };
                longest = longest.max(run);
            }
            black_box(longest)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
