//! E7 benchmark: exhaustive verification throughput of the model checker —
//! the bitset game core against the retained enumerate-everything reference.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sc_core::{LutCounter, LutSpec};
use sc_verifier::{analyze, reference, verify, Analyzer};

fn follow_leader() -> LutCounter {
    LutCounter::new(LutSpec {
        n: 2,
        f: 0,
        c: 2,
        states: 2,
        transition: vec![vec![1, 0, 1, 0], vec![1, 0, 1, 0]],
        output: vec![vec![0, 1], vec![0, 1]],
        stabilization_bound: 1,
    })
    .unwrap()
}

fn follow_max_4_1() -> LutCounter {
    let rows: Vec<u8> = (0..16u32)
        .map(|index| {
            let max = (0..4).map(|u| (index >> u & 1) as u8).max().unwrap();
            (max + 1) % 2
        })
        .collect();
    LutCounter::new(LutSpec {
        n: 4,
        f: 1,
        c: 2,
        states: 2,
        transition: vec![rows.clone(), rows.clone(), rows.clone(), rows],
        output: vec![vec![0, 1]; 4],
        stabilization_bound: 0,
    })
    .unwrap()
}

fn bench_verifier(c: &mut Criterion) {
    let mut g = c.benchmark_group("verifier");
    g.sample_size(50).measurement_time(Duration::from_secs(3));

    let small = follow_leader();
    g.bench_function("verify_2_node_f0", |b| {
        b.iter(|| black_box(verify(&small).unwrap()))
    });

    let byz = follow_max_4_1();
    g.bench_function("verify_4_node_f1_all_fault_sets", |b| {
        b.iter(|| black_box(verify(&byz).unwrap()))
    });

    // The synthesis scoring function, bitset core vs retained reference —
    // the hill-climb's cost per candidate evaluation (the hill-climb holds
    // one Analyzer, so the buffers are warm).
    let mut analyzer = Analyzer::new();
    g.bench_function("analyze_4_node_f1_bitset", |b| {
        b.iter(|| black_box(analyzer.analyze(&byz).unwrap()))
    });
    g.bench_function("analyze_4_node_f1_reference", |b| {
        b.iter(|| black_box(reference::analyze(&byz).unwrap()))
    });

    // Beyond seed limits: only the bitset core decides this instance.
    let big = sc_bench::sixteen_state_instance();
    assert!(reference::analyze(&big).is_err());
    g.bench_function("analyze_16state_4node_bitset", |b| {
        b.iter(|| black_box(analyze(&big).unwrap()))
    });

    g.finish();
}

criterion_group!(benches, bench_verifier);
criterion_main!(benches);
