//! E7 benchmark: exhaustive verification throughput of the model checker.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sc_core::{LutCounter, LutSpec};
use sc_verifier::verify;

fn follow_leader() -> LutCounter {
    LutCounter::new(LutSpec {
        n: 2,
        f: 0,
        c: 2,
        states: 2,
        transition: vec![vec![1, 0, 1, 0], vec![1, 0, 1, 0]],
        output: vec![vec![0, 1], vec![0, 1]],
        stabilization_bound: 1,
    })
    .unwrap()
}

fn follow_max_4_1() -> LutCounter {
    let rows: Vec<u8> = (0..16u32)
        .map(|index| {
            let max = (0..4).map(|u| (index >> u & 1) as u8).max().unwrap();
            (max + 1) % 2
        })
        .collect();
    LutCounter::new(LutSpec {
        n: 4,
        f: 1,
        c: 2,
        states: 2,
        transition: vec![rows.clone(), rows.clone(), rows.clone(), rows],
        output: vec![vec![0, 1]; 4],
        stabilization_bound: 0,
    })
    .unwrap()
}

fn bench_verifier(c: &mut Criterion) {
    let mut g = c.benchmark_group("verifier");
    g.sample_size(50).measurement_time(Duration::from_secs(3));

    let small = follow_leader();
    g.bench_function("verify_2_node_f0", |b| {
        b.iter(|| black_box(verify(&small).unwrap()))
    });

    let byz = follow_max_4_1();
    g.bench_function("verify_4_node_f1_all_fault_sets", |b| {
        b.iter(|| black_box(verify(&byz).unwrap()))
    });

    g.finish();
}

criterion_group!(benches, bench_verifier);
criterion_main!(benches);
