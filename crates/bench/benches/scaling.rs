//! E4 benchmark: per-round simulation cost as the recursion deepens
//! (the practical cost of resilience boosting).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_core::CounterBuilder;
use sc_sim::{adversaries, Simulation};

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_round_cost");
    g.sample_size(20).measurement_time(Duration::from_secs(3));

    let stacks = [
        ("A(4,1)", CounterBuilder::corollary1(1, 2).unwrap()),
        (
            "A(12,3)",
            CounterBuilder::corollary1(1, 2).unwrap().boost(3).unwrap(),
        ),
        (
            "A(36,7)",
            CounterBuilder::corollary1(1, 2)
                .unwrap()
                .boost(3)
                .unwrap()
                .boost(3)
                .unwrap(),
        ),
    ];
    for (label, builder) in stacks {
        let algo = builder.build().unwrap();
        g.bench_with_input(BenchmarkId::new("rounds_x10", label), &algo, |b, algo| {
            let mut sim = Simulation::new(algo, adversaries::none(), 7);
            b.iter(|| {
                sim.run(10);
                black_box(sim.round())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
