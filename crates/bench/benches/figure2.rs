//! E3 / Figure 2 benchmark: constructing and stepping the recursive
//! A(4,1) → A(12,3) → A(36,7) stack.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sc_core::CounterBuilder;
use sc_sim::{adversaries, Simulation};

fn bench_figure2(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure2");
    g.sample_size(10).measurement_time(Duration::from_secs(5));

    g.bench_function("construct_A(36,7)", |b| {
        b.iter(|| {
            black_box(
                CounterBuilder::corollary1(1, 2)
                    .unwrap()
                    .boost(3)
                    .unwrap()
                    .boost(3)
                    .unwrap()
                    .build()
                    .unwrap(),
            )
        })
    });

    let a36 = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    let faulty = [0usize, 1, 2, 3, 4, 12, 24];
    g.bench_function("run_100_rounds_A(36,7)_7_byzantine", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let adv = adversaries::random(&a36, faulty, seed);
            let mut sim = Simulation::new(&a36, adv, seed);
            sim.run(100);
            black_box(sim.outputs_now())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_figure2);
criterion_main!(benches);
