//! E1 / Table 1 benchmark: full stabilisation runs of the measurable rows —
//! the boosted deterministic counter vs the randomised baseline.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sc_baselines::RandomizedCounter;
use sc_core::CounterBuilder;
use sc_protocol::Counter as _;
use sc_sim::{adversaries, Simulation};

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10).measurement_time(Duration::from_secs(5));

    let a4 = CounterBuilder::corollary1(1, 2).unwrap().build().unwrap();
    g.bench_function("stabilize_A(4,1)_random_adversary", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let adv = adversaries::random(&a4, [1], seed);
            let mut sim = Simulation::new(&a4, adv, seed);
            black_box(sim.run_until_stable(a4.stabilization_bound() + 64).unwrap())
        })
    });

    let a12 = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    g.bench_function("stabilize_A(12,3)_random_adversary", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let adv = adversaries::random(&a12, [0, 1, 4], seed);
            let mut sim = Simulation::new(&a12, adv, seed);
            black_box(
                sim.run_until_stable(a12.stabilization_bound() + 64)
                    .unwrap(),
            )
        })
    });

    let baseline = RandomizedCounter::new(4, 1, 2).unwrap();
    g.bench_function("stabilize_randomized_baseline_n4", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let adv = adversaries::two_faced(&baseline, [1], seed);
            let mut sim = Simulation::new(&baseline, adv, seed);
            black_box(sim.run_until_stable(4096).unwrap())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
