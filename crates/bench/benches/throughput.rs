//! Engine throughput: batched zero-copy sweeps vs. looping the
//! first-generation single-run engine, on the Figure-2 recursion stack
//! `A(4,1) → A(12,3) → A(36,7)`.
//!
//! Two things are measured:
//!
//! * criterion micro-benches of a fixed sweep per level, on both engines,
//!   and
//! * a summary table of rounds/sec over a 64-scenario sweep per adversary
//!   regime, with the speedup factor and the **state-materialisation
//!   ledger** — the perf baseline future PRs are judged against.
//!
//! The baseline deliberately reproduces the original pipeline end to end:
//! `reference_step` (clone-heavy round loop, one owned state per
//! (faulty, receiver, round) message, per-receiver `O(n)` vote
//! recomputation) + materialised `OutputTrace` + offline
//! `detect_stabilization`. The batched path is `Batch::run_prepared`
//! (double-buffered zero-copy rounds, hoisted receiver-shared vote tallies,
//! borrow-based adversary message plane, streaming detection). Both sides
//! execute the same seeds, rounds, and adversaries, and their verdicts are
//! asserted identical.
//!
//! The adversary regimes include the **Byzantine-heavy mix** this plane was
//! built for — two-faced equivocation and replay on top of crash and
//! fresh-random — and the table reports, per regime, the owned-state clone
//! count of the loop pipeline next to the pool fabrications of the borrowed
//! plane (0 for pure-echo attacks): the regression guard for the message
//! plane.
//!
//! Baseline caveat: for echo-style strategies the loop pipeline's cost
//! model (one owned clone per delivered Byzantine message) matches the
//! original engine exactly. For strategies that fabricate *fresh per pair*
//! (the `random` regime) the loop side pays the fabrication **plus** the
//! per-message clone, where the original returned the fabricated state
//! directly — its speedup column therefore mildly overstates the plane's
//! win; read the echo regimes (two-faced, replay, crash) as the honest
//! measure of this refactor.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use sc_core::{Algorithm, CounterBuilder, CounterState};
use sc_protocol::Counter as _;
use sc_sim::{
    adversaries, detect_stabilization, required_confirmation, Adversary, Batch, OutputTrace,
    Scenario, Simulation, StabilizationReport,
};

const SCENARIOS: u64 = 64;
const HORIZON: u64 = 96;

type Verdicts = Vec<Result<StabilizationReport, sc_sim::SimError>>;
type AdversaryFactory<'a> = Box<dyn Fn(u64) -> Box<dyn Adversary<CounterState> + 'a> + Sync + 'a>;

fn stack() -> Vec<(&'static str, Algorithm, Vec<usize>)> {
    vec![
        (
            "A(4,1)",
            CounterBuilder::corollary1(1, 2).unwrap().build().unwrap(),
            vec![1],
        ),
        (
            "A(12,3)",
            CounterBuilder::corollary1(1, 2)
                .unwrap()
                .boost(3)
                .unwrap()
                .build()
                .unwrap(),
            vec![0, 1, 4],
        ),
        (
            "A(36,7)",
            CounterBuilder::corollary1(1, 2)
                .unwrap()
                .boost(3)
                .unwrap()
                .boost(3)
                .unwrap()
                .build()
                .unwrap(),
            vec![0, 1, 2, 3, 4, 12, 24],
        ),
    ]
}

/// The adversary regimes swept: no faults, frozen (crash) faults,
/// fresh-random equivocation, and the Byzantine-heavy echo attacks
/// (two-faced, replay) whose fabrication cost the borrowed message plane
/// eliminates. Together they bracket the message cost an adversary adds on
/// top of the engine.
fn regimes<'a>(
    algo: &'a Algorithm,
    faulty: &'a [usize],
) -> Vec<(&'static str, AdversaryFactory<'a>)> {
    vec![
        ("fault-free", Box::new(|_| Box::new(adversaries::none()))),
        (
            "crash",
            Box::new(move |seed| Box::new(adversaries::crash(algo, faulty.iter().copied(), seed))),
        ),
        (
            "random",
            Box::new(move |seed| Box::new(adversaries::random(algo, faulty.iter().copied(), seed))),
        ),
        (
            "two-faced",
            Box::new(move |seed| {
                Box::new(adversaries::two_faced(algo, faulty.iter().copied(), seed))
            }),
        ),
        (
            "replay",
            Box::new(move |_| Box::new(adversaries::replay(faulty.iter().copied(), 3))),
        ),
    ]
}

/// The original pipeline, looped per scenario: first-generation engine,
/// materialised trace, offline detection. Returns the verdicts and the
/// owned-state materialisation count (the loop engine clones one owned
/// state per delivered Byzantine message).
fn sweep_reference(
    algo: &Algorithm,
    factory: &AdversaryFactory<'_>,
    seeds: u64,
    horizon: u64,
) -> (Verdicts, u64) {
    let confirm = required_confirmation(algo.modulus());
    let mut owned_clones = 0u64;
    let verdicts = (0..seeds)
        .map(|seed| {
            let mut sim = Simulation::new(algo, factory(seed), seed);
            let messages_per_round = (sim.faulty().len() * sim.honest().len()) as u64;
            let mut trace = OutputTrace::new(sim.honest().to_vec());
            trace.push_row(sim.outputs_now());
            for _ in 0..horizon {
                sim.reference_step();
                trace.push_row(sim.outputs_now());
            }
            owned_clones += messages_per_round * horizon;
            detect_stabilization(&trace, algo.modulus(), confirm)
        })
        .collect();
    (verdicts, owned_clones)
}

/// The batched zero-copy pipeline for the same sweep. Returns the verdicts
/// and the pool-fabrication count of the borrowed message plane.
fn sweep_batched(
    algo: &Algorithm,
    factory: &AdversaryFactory<'_>,
    seeds: u64,
    horizon: u64,
) -> (Verdicts, u64) {
    let scenarios = Scenario::seeds(0..seeds);
    let report = Batch::new(algo, horizon)
        .run_prepared(&scenarios, |s: &Scenario<CounterState>| factory(s.seed));
    let fabricated = report.fabricated_states();
    let verdicts = report.outcomes.into_iter().map(|o| o.result).collect();
    (verdicts, fabricated)
}

fn bench_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, algo, faulty) in stack() {
        for (regime, factory) in regimes(&algo, &faulty) {
            g.bench_function(format!("single_run_loop_{label}_{regime}"), |b| {
                b.iter(|| sweep_reference(&algo, &factory, 8, HORIZON))
            });
            g.bench_function(format!("batched_{label}_{regime}"), |b| {
                b.iter(|| sweep_batched(&algo, &factory, 8, HORIZON))
            });
        }
    }
    g.finish();
}

/// One timed full-size sweep per engine per (level, adversary), printed as
/// the rounds/sec baseline table with the speedup factor and the
/// state-materialisation ledger of both pipelines.
fn summary_table() {
    println!("\n## {SCENARIOS}-scenario sweeps, {HORIZON} rounds each — rounds/sec baseline\n");
    println!(
        "| {:<8} | {:<10} | {:>16} | {:>16} | {:>8} | {:>12} | {:>12} |",
        "counter",
        "adversary",
        "loop (rounds/s)",
        "batch (rounds/s)",
        "speedup",
        "loop clones",
        "batch fabric"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(10),
        "-".repeat(12),
        "-".repeat(18),
        "-".repeat(18),
        "-".repeat(10),
        "-".repeat(14),
        "-".repeat(14)
    );
    for (label, algo, faulty) in stack() {
        for (regime, factory) in regimes(&algo, &faulty) {
            let total_rounds = (SCENARIOS * HORIZON) as f64;

            let start = Instant::now();
            let (reference, owned_clones) = sweep_reference(&algo, &factory, SCENARIOS, HORIZON);
            let reference_time = start.elapsed().as_secs_f64();

            let start = Instant::now();
            let (batched, fabricated) = sweep_batched(&algo, &factory, SCENARIOS, HORIZON);
            let batched_time = start.elapsed().as_secs_f64();

            // Same protocol, same seeds, same horizon ⇒ identical verdicts;
            // a throughput number for a divergent engine is meaningless.
            assert_eq!(
                reference, batched,
                "{label}/{regime}: engines disagree — benchmark invalid"
            );
            // The borrowed plane can only ever fabricate *less* than the
            // loop pipeline's one-owned-state-per-message model.
            assert!(
                fabricated <= owned_clones,
                "{label}/{regime}: plane fabricated more states than messages"
            );

            println!(
                "| {:<8} | {:<10} | {:>16.0} | {:>16.0} | {:>7.2}x | {:>12} | {:>12} |",
                label,
                regime,
                total_rounds / reference_time,
                total_rounds / batched_time,
                reference_time / batched_time,
                owned_clones,
                fabricated
            );
        }
    }
    println!();
}

criterion_group!(benches, bench_throughput);

fn main() {
    // Set THROUGHPUT_SUMMARY_ONLY=1 to skip the criterion micro-benches and
    // print just the baseline table — the quick regression check.
    if std::env::var_os("THROUGHPUT_SUMMARY_ONLY").is_none() {
        benches();
    }
    summary_table();
}
