//! Engine throughput and early-decision sweeps on the Figure-2 recursion
//! stack `A(4,1) → A(12,3) → A(36,7)`.
//!
//! Three things are measured:
//!
//! * criterion micro-benches of a fixed sweep per level, on the looped
//!   single-run pipeline and the batched pipeline,
//! * a summary table of rounds/sec over a 64-scenario sweep per adversary
//!   regime, with the speedup factor and the **state-materialisation
//!   ledger** — the engine baseline future PRs are judged against, and
//! * the **early-decision table**: E1/E3-style long-horizon sweeps run
//!   full-horizon vs. cycle-detecting ([`Batch::run_prepared_early`]), with
//!   decided-at and rounds-saved columns per regime. Verdicts of the two
//!   modes are asserted **identical scenario for scenario** — running this
//!   bench (e.g. `THROUGHPUT_SUMMARY_ONLY=1` in CI) is the divergence gate,
//! * the **bit-sliced table**: objective evals/s, scalar vs sliced engine
//!   on identical scripts per Figure-2 level (per-script delay equality
//!   asserted; the A(36,7) row gates ≥ 20×), plus structured-move search
//!   vs plain hill-climbing on the sliced A(4,1) objective; the run
//!   appends its measurements to `BENCH_bitsliced.json`,
//! * the **synthesis table**: the orbit-quotient solver vs the retained
//!   full bitset solver on an exchangeable `n = 4, f = 1` workload
//!   (bitwise-equal summaries asserted, ≥ 3× speedup gated), and the
//!   end-to-end `n = 5, f = 1` campaign — attack pre-filter + quotient
//!   verifier over the declared 64-candidate symmetric family, with the
//!   audit ledger; measurements append to `BENCH_synthesis.json`,
//! * the **parallel-scaling table**: the persistent `sc-exec` pool vs the
//!   pre-pool spawn-per-call fan-out on a repeated small-batch A(4,1)
//!   sweep (verdict equality asserted, ≥ 1.5× gated — spawn overhead is
//!   the whole difference), thread-cap rows (1 / 2 / all) for that sweep
//!   and for the n = 5 family sweep (checkpoint equality asserted across
//!   caps), and the pre-filter's cold vs warm sweep-context evals/s;
//!   measurements append to `BENCH_parallel.json`,
//! * the **runtime table**: one live `sc-runtime` A(4,1) run with real
//!   injected faults (delayed, scripted-witness, equivocate, crash) under
//!   saturating snapshot readers — reads/s (≥ 1M gated), per-burst
//!   recovery percentiles, batched read-latency percentiles, and the
//!   deterministic harness's digest-equality witness; measurements append
//!   to `BENCH_runtime.json`,
//! * the **observability table** (`--features trace` builds): the traced
//!   live hot path within **≤ 5%** of untraced wall clock, the metered
//!   `CounterHandle` read path holding the **≥ 1M reads/s** gate, the
//!   traced-vs-untraced digest-equality witness, and a flight-recorder
//!   firing on an injected over-budget burst; measurements append to
//!   `BENCH_obs.json`.
//!
//! The first-generation `reference_step` engine and its clone-cost baseline
//! are gone (the bitwise equivalence gate stayed green from PR 1 through
//! PR 2); the loop pipeline now measures the *architecture* difference that
//! remains — per-scenario stepping with a materialised `OutputTrace` and
//! offline detection versus batched prepared rounds with streaming
//! detection — on the same zero-copy core.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_attack::AttackPreFilter;
use sc_attack::{search, Delay, MoveSpace, Objective, RawState, SampledRaw, Script, SearchConfig};
use sc_core::{Algorithm, CounterBuilder, CounterState, LutCounter, LutSpec};
use sc_protocol::{Counter as _, Fingerprint, SyncProtocol as _};
use sc_pulling::{PullCounter, Pulled, Sampling};
use sc_sim::{
    adversaries, detect_stabilization, random_periodic, required_confirmation, sleeper,
    two_faced_periodic, Adversary, Batch, BatchReport, ExitReason, OutputTrace, Scenario,
    Simulation, StabilizationReport,
};
use sc_verifier::{
    sweep_family, synthesize, Analyzer, SolverMode, SweepCheckpoint, SymmetricFamily,
    SynthesisOutcome,
};

const SCENARIOS: u64 = 64;
const HORIZON: u64 = 96;

/// Scenarios per regime of the early-decision table.
const EARLY_SCENARIOS: u64 = 16;
/// E1/E3-style soak horizon for the early-decision table: A(4,1)'s joint
/// configuration is periodic with the base modulus 2304 once stabilised, so
/// 32 wraps is a long-run counting confirmation the cycle exit collapses to
/// little more than one wrap.
const EARLY_HORIZON: u64 = 32 * 2304;

type Verdicts = Vec<Result<StabilizationReport, sc_sim::SimError>>;
type AdversaryFactory<'a> = Box<dyn Fn(u64) -> Box<dyn Adversary<CounterState> + 'a> + Sync + 'a>;

fn stack() -> Vec<(&'static str, Algorithm, Vec<usize>)> {
    vec![
        (
            "A(4,1)",
            CounterBuilder::corollary1(1, 2).unwrap().build().unwrap(),
            vec![1],
        ),
        (
            "A(12,3)",
            CounterBuilder::corollary1(1, 2)
                .unwrap()
                .boost(3)
                .unwrap()
                .build()
                .unwrap(),
            vec![0, 1, 4],
        ),
        (
            "A(36,7)",
            CounterBuilder::corollary1(1, 2)
                .unwrap()
                .boost(3)
                .unwrap()
                .boost(3)
                .unwrap()
                .build()
                .unwrap(),
            vec![0, 1, 2, 3, 4, 12, 24],
        ),
    ]
}

/// The adversary regimes swept: no faults, frozen (crash) faults,
/// fresh-random equivocation, the Byzantine echo attacks (two-faced,
/// replay), a sleeper that turns into a crash mid-run, and the
/// **derandomised periodic variants** of the RNG-driven attacks
/// (`two-faced*`, `random*` — seed-derived periodic schedules that
/// snapshot, extending the early-decision exit to the equivocation
/// regimes). Together they bracket the message cost an adversary adds on
/// top of the engine and split into snapshot-capable (fault-free, crash,
/// replay, sleeper, both periodic variants) and RNG-driven (random,
/// two-faced) halves for the early-decision table.
fn regimes<'a>(
    algo: &'a Algorithm,
    faulty: &'a [usize],
) -> Vec<(&'static str, AdversaryFactory<'a>)> {
    vec![
        ("fault-free", Box::new(|_| Box::new(adversaries::none()))),
        (
            "crash",
            Box::new(move |seed| Box::new(adversaries::crash(algo, faulty.iter().copied(), seed))),
        ),
        (
            "random",
            Box::new(move |seed| Box::new(adversaries::random(algo, faulty.iter().copied(), seed))),
        ),
        (
            "two-faced",
            Box::new(move |seed| {
                Box::new(adversaries::two_faced(algo, faulty.iter().copied(), seed))
            }),
        ),
        (
            "replay",
            Box::new(move |_| Box::new(adversaries::replay(faulty.iter().copied(), 3))),
        ),
        (
            "sleeper",
            Box::new(move |seed| {
                Box::new(sleeper(
                    algo,
                    faulty.iter().copied(),
                    64,
                    adversaries::crash(algo, faulty.iter().copied(), seed),
                    seed,
                ))
            }),
        ),
        (
            "two-faced*",
            Box::new(move |seed| Box::new(two_faced_periodic(faulty.iter().copied(), seed, 8))),
        ),
        (
            "random*",
            Box::new(move |seed| Box::new(random_periodic(algo, faulty.iter().copied(), seed, 8))),
        ),
    ]
}

/// The per-scenario loop pipeline: single-stepped engine, materialised
/// trace, offline detection. Returns the verdicts and the pool-fabrication
/// ledger.
fn sweep_loop(
    algo: &Algorithm,
    factory: &AdversaryFactory<'_>,
    seeds: u64,
    horizon: u64,
) -> (Verdicts, u64) {
    let confirm = required_confirmation(algo.modulus());
    let mut fabricated = 0u64;
    let verdicts = (0..seeds)
        .map(|seed| {
            let mut sim = Simulation::new(algo, factory(seed), seed);
            let mut trace = OutputTrace::new(sim.honest().to_vec());
            trace.push_row(sim.outputs_now());
            for _ in 0..horizon {
                sim.step();
                trace.push_row(sim.outputs_now());
            }
            fabricated += sim.fabricated_states();
            detect_stabilization(&trace, algo.modulus(), confirm)
        })
        .collect();
    (verdicts, fabricated)
}

/// The batched zero-copy pipeline for the same sweep. Returns the verdicts
/// and the pool-fabrication ledger.
fn sweep_batched(
    algo: &Algorithm,
    factory: &AdversaryFactory<'_>,
    seeds: u64,
    horizon: u64,
) -> (Verdicts, u64) {
    let scenarios = Scenario::seeds(0..seeds);
    let report = Batch::new(algo, horizon)
        .run_prepared(&scenarios, |s: &Scenario<CounterState>| factory(s.seed));
    let fabricated = report.fabricated_states();
    let verdicts = report.outcomes.into_iter().map(|o| o.result).collect();
    (verdicts, fabricated)
}

/// The early-decision pipeline: batched prepared rounds with the cycle
/// detector armed.
fn sweep_early(
    algo: &Algorithm,
    factory: &AdversaryFactory<'_>,
    seeds: u64,
    horizon: u64,
) -> BatchReport {
    let scenarios = Scenario::seeds(0..seeds);
    Batch::new(algo, horizon)
        .run_prepared_early(&scenarios, |s: &Scenario<CounterState>| factory(s.seed))
}

fn bench_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for (label, algo, faulty) in stack() {
        for (regime, factory) in regimes(&algo, &faulty) {
            g.bench_function(format!("single_run_loop_{label}_{regime}"), |b| {
                b.iter(|| sweep_loop(&algo, &factory, 8, HORIZON))
            });
            g.bench_function(format!("batched_{label}_{regime}"), |b| {
                b.iter(|| sweep_batched(&algo, &factory, 8, HORIZON))
            });
        }
    }
    g.finish();
}

/// One timed full-size sweep per engine per (level, adversary), printed as
/// the rounds/sec baseline table with the speedup factor and the
/// state-materialisation ledger of both pipelines.
fn summary_table() {
    println!("\n## {SCENARIOS}-scenario sweeps, {HORIZON} rounds each — rounds/sec baseline\n");
    println!(
        "| {:<8} | {:<10} | {:>16} | {:>16} | {:>8} | {:>12} | {:>12} |",
        "counter",
        "adversary",
        "loop (rounds/s)",
        "batch (rounds/s)",
        "speedup",
        "loop fabric",
        "batch fabric"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(10),
        "-".repeat(12),
        "-".repeat(18),
        "-".repeat(18),
        "-".repeat(10),
        "-".repeat(14),
        "-".repeat(14)
    );
    for (label, algo, faulty) in stack() {
        for (regime, factory) in regimes(&algo, &faulty) {
            let total_rounds = (SCENARIOS * HORIZON) as f64;

            let start = Instant::now();
            let (looped, loop_fabricated) = sweep_loop(&algo, &factory, SCENARIOS, HORIZON);
            let loop_time = start.elapsed().as_secs_f64();

            let start = Instant::now();
            let (batched, batch_fabricated) = sweep_batched(&algo, &factory, SCENARIOS, HORIZON);
            let batched_time = start.elapsed().as_secs_f64();

            // Same protocol, same seeds, same horizon ⇒ identical verdicts;
            // a throughput number for a divergent engine is meaningless.
            assert_eq!(
                looped, batched,
                "{label}/{regime}: engines disagree — benchmark invalid"
            );

            println!(
                "| {:<8} | {:<10} | {:>16.0} | {:>16.0} | {:>7.2}x | {:>12} | {:>12} |",
                label,
                regime,
                total_rounds / loop_time,
                total_rounds / batched_time,
                loop_time / batched_time,
                loop_fabricated,
                batch_fabricated
            );
        }
    }
    println!();
}

/// The early-decision table: E1/E3-style soak sweeps on A(4,1), full
/// horizon vs. cycle-detecting, with the decided-at / rounds-saved ledger.
/// Divergence between the two modes aborts the bench — this is the verdict
/// gate CI runs in `THROUGHPUT_SUMMARY_ONLY=1` mode.
fn early_decision_table() {
    let (label, algo, faulty) = stack().remove(0);
    println!(
        "## early-decision sweeps — {label}, {EARLY_SCENARIOS} scenarios × {EARLY_HORIZON} rounds\n"
    );
    println!(
        "| {:<10} | {:>6} | {:>14} | {:>14} | {:>12} | {:>14} | {:>8} |",
        "adversary", "exits", "decided (max)", "rounds saved", "full (s)", "early (s)", "speedup"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(12),
        "-".repeat(8),
        "-".repeat(16),
        "-".repeat(16),
        "-".repeat(14),
        "-".repeat(16),
        "-".repeat(10)
    );
    for (regime, factory) in regimes(&algo, &faulty) {
        let start = Instant::now();
        let full = sweep_batched(&algo, &factory, EARLY_SCENARIOS, EARLY_HORIZON);
        let full_time = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let early = sweep_early(&algo, &factory, EARLY_SCENARIOS, EARLY_HORIZON);
        let early_time = start.elapsed().as_secs_f64();

        // The whole point: early-exit verdicts must be bitwise identical to
        // full-horizon verdicts, scenario for scenario.
        let early_verdicts: Verdicts = early.outcomes.iter().map(|o| o.result.clone()).collect();
        assert_eq!(
            full.0, early_verdicts,
            "{label}/{regime}: early-exit verdict diverges from full horizon"
        );

        let decided_max = early
            .outcomes
            .iter()
            .filter_map(|o| match o.exit_reason {
                ExitReason::Cycle { decided_at, .. } => Some(decided_at),
                _ => None,
            })
            .max();
        println!(
            "| {:<10} | {:>2}/{:<3} | {:>14} | {:>14} | {:>12.2} | {:>14.2} | {:>7.1}x |",
            regime,
            early.early_exits(),
            EARLY_SCENARIOS,
            decided_max.map_or_else(|| "-".into(), |d| d.to_string()),
            early.rounds_saved(EARLY_HORIZON),
            full_time,
            early_time,
            full_time / early_time
        );
    }
    println!();
}

/// The move vocabulary every worst-case search row samples from.
const SEARCH_SPACE: MoveSpace = MoveSpace {
    raw_values: 8,
    salts: 3,
    max_lag: 3,
};

/// Folds `(name, delay)` rows to the strongest (first wins ties).
fn max_delay(rows: impl IntoIterator<Item = (&'static str, Delay)>) -> (&'static str, Delay) {
    rows.into_iter().fold(("-", Delay::default()), |best, row| {
        if row.1 > best.1 {
            row
        } else {
            best
        }
    })
}

/// Measures every library regime of `regimes` on `objective`'s sweep and
/// returns the strongest, with its name.
fn strongest_builtin<P>(
    objective: &mut Objective<'_, P, SampledRaw<'_, P>>,
    regimes: Vec<(&'static str, AdversaryFactory<'_>)>,
) -> (&'static str, Delay)
where
    P: Fingerprint<State = CounterState>,
{
    let measured: Vec<(&'static str, Delay)> = regimes
        .into_iter()
        .map(|(name, factory)| (name, objective.measure(factory)))
        .collect();
    max_delay(measured)
}

/// One row of the worst-case table: the strongest built-in strategy vs the
/// best script the guided search finds on the same `(seed, fault set)`
/// sweep, with the search's evaluation throughput.
struct WorstCaseRow {
    label: String,
    horizon: u64,
    seeds: u64,
    builtin_name: &'static str,
    builtin: Delay,
    searched: Delay,
    evaluations: u64,
    evals_per_sec: f64,
}

impl WorstCaseRow {
    fn print(&self) {
        println!(
            "| {:<14} | {:>7} | {:>5} | {:>13} | {:>10} | {:>13} | {:>8} | {:>6} | {:>9.0} |",
            self.label,
            self.horizon,
            self.seeds,
            format!("{} ({})", self.builtin.worst, self.builtin_name),
            self.builtin.total,
            self.searched.worst,
            self.searched.total,
            self.evaluations,
            self.evals_per_sec,
        );
    }
}

/// Runs the search-vs-library comparison for one protocol.
fn worst_case_row<P, R>(
    label: &str,
    objective: &mut Objective<'_, P, R>,
    builtin: (&'static str, Delay),
    space: MoveSpace,
    budget: u64,
) -> WorstCaseRow
where
    P: Fingerprint + Sync,
    P::State: Send + Sync,
    R: RawState<P::State> + Clone + Send + Sync,
{
    let mut cfg = SearchConfig::new(4, space, 1);
    cfg.budget = budget;
    let start = Instant::now();
    let report = search::search(objective, &cfg);
    let elapsed = start.elapsed().as_secs_f64();
    WorstCaseRow {
        label: label.to_string(),
        horizon: objective.horizon(),
        seeds: objective.scenarios() as u64,
        builtin_name: builtin.0,
        builtin: builtin.1,
        searched: report.delay,
        evaluations: report.evaluations,
        evals_per_sec: report.evaluations as f64 / elapsed,
    }
}

/// The worst-case adversary search table: per protocol × fault set, the
/// strongest built-in strategy's sweep delay next to the best **searched
/// script**'s, on the identical `(seed, fault set)` sweep, plus the
/// search's evaluation throughput. The A(4,1) row is the acceptance gate:
/// the search must *strictly* exceed every built-in strategy — the
/// assertion aborts the bench (and the CI smoke run) otherwise.
fn worst_case_table() {
    println!(
        "## worst-case adversary search — best built-in vs searched script, same (seed, f) sweep\n"
    );
    println!(
        "| {:<14} | {:>7} | {:>5} | {:>13} | {:>10} | {:>13} | {:>8} | {:>6} | {:>9} |",
        "counter",
        "horizon",
        "seeds",
        "builtin worst",
        "b. total",
        "search worst",
        "s. total",
        "evals",
        "evals/s"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(16),
        "-".repeat(9),
        "-".repeat(7),
        "-".repeat(15),
        "-".repeat(12),
        "-".repeat(15),
        "-".repeat(10),
        "-".repeat(8),
        "-".repeat(11)
    );
    // Per-level sweep shapes: A(4,1) gets the real hunt at the summary
    // sweep's 96-round horizon — it is the acceptance gate. The deeper
    // stacks stabilise in hundreds of rounds even under a mere crash, so
    // their sweeps run a 1024-round horizon (neither saturates there) with
    // fewer seeds and a probe-sized budget.
    let shapes: [(u64, u64, u64); 3] = [(96, 8, 384), (1024, 4, 48), (1024, 4, 16)];
    for ((horizon, seeds, budget), (label, algo, faulty)) in shapes.into_iter().zip(stack()) {
        let mut objective =
            Objective::new(&algo, SampledRaw(&algo), faulty.clone(), 0..seeds, horizon)
                .expect("sweep horizon fits the confirmation suffix");
        let builtin = strongest_builtin(&mut objective, regimes(&algo, &faulty));
        let row = worst_case_row(label, &mut objective, builtin, SEARCH_SPACE, budget);
        row.print();
        if label == "A(4,1)" {
            assert!(
                row.searched > row.builtin,
                "{label}: the searched script ({:?}) must strictly exceed every \
                 built-in strategy (strongest: {} at {:?})",
                row.searched,
                row.builtin_name,
                row.builtin
            );
        }
    }

    // The pulling counter sweeps through the same engine; the scripted
    // adversary answers pulls through the shared message plane like any
    // other strategy.
    let base = stack().remove(0).1;
    let pc = PullCounter::from_algorithm(&base, Sampling::Full)
        .expect("A(4,1) transplants into the pulling model");
    let pulled = Pulled::new(&pc);
    let faulty = vec![1usize];
    let mut objective = Objective::new(&pulled, SampledRaw(&pulled), faulty.clone(), 0..8, HORIZON)
        .expect("sweep horizon fits the confirmation suffix");
    type BoxedPullAdversary<'a> = Box<dyn Adversary<sc_pulling::PullState> + 'a>;
    let measured: [(&'static str, Delay); 4] = [
        (
            "crash",
            objective.measure(|seed| {
                Box::new(adversaries::crash(&pulled, faulty.iter().copied(), seed))
                    as BoxedPullAdversary<'_>
            }),
        ),
        (
            "random",
            objective.measure(|seed| {
                Box::new(adversaries::random(&pulled, faulty.iter().copied(), seed))
                    as BoxedPullAdversary<'_>
            }),
        ),
        (
            "two-faced",
            objective.measure(|seed| {
                Box::new(adversaries::two_faced(
                    &pulled,
                    faulty.iter().copied(),
                    seed,
                )) as BoxedPullAdversary<'_>
            }),
        ),
        (
            "replay",
            objective.measure(|_| {
                Box::new(adversaries::replay(faulty.iter().copied(), 3)) as BoxedPullAdversary<'_>
            }),
        ),
    ];
    let builtin = max_delay(measured);
    worst_case_row("pull-A(4,1)", &mut objective, builtin, SEARCH_SPACE, 64).print();
    println!();
}

/// One row of the bit-sliced throughput table.
struct BitslicedRow {
    label: &'static str,
    seeds: u64,
    horizon: u64,
    scripts: usize,
    scalar_eps: f64,
    sliced_eps: f64,
    speedup: f64,
}

/// The bit-sliced objective table: identical random scripts scored by the
/// scalar early-decision engine and by the bit-sliced engine
/// ([`Objective::attach_sliced`]), per Figure-2 level, with per-script
/// [`Delay`] equality asserted before any rate is printed. The A(36,7)
/// row is the acceptance gate: the sliced path must deliver **≥ 20×** the
/// scalar evals/s — the assertion aborts the bench (and the
/// `THROUGHPUT_SUMMARY_ONLY=1` CI run) otherwise.
///
/// A second block re-runs the guided search on the sliced A(4,1)
/// objective: plain `hill_climb` vs the structured `anneal` (row copy /
/// round swap / prefix crossover), same budget and seed — the structured
/// moves must find at least as strong a script.
///
/// The measured trajectory is appended to `BENCH_bitsliced.json` at the
/// workspace root so future PRs inherit a perf baseline.
fn bitsliced_table() {
    println!("## bit-sliced objective — scalar vs sliced evals/s, identical scripts\n");
    println!(
        "| {:<8} | {:>5} | {:>7} | {:>7} | {:>14} | {:>14} | {:>8} |",
        "counter", "seeds", "horizon", "scripts", "scalar evals/s", "sliced evals/s", "speedup"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(10),
        "-".repeat(7),
        "-".repeat(9),
        "-".repeat(9),
        "-".repeat(16),
        "-".repeat(16),
        "-".repeat(10)
    );

    // (scripts, sliced reps): fewer scripts where scalar evals are slow,
    // more sliced repetitions to keep its (much shorter) timing stable.
    let shapes: [(usize, usize); 3] = [(16, 4), (8, 4), (3, 8)];
    let mut rows: Vec<BitslicedRow> = Vec::new();
    for ((scripts_n, reps), (label, algo, faulty)) in shapes.into_iter().zip(stack()) {
        let mut scalar_obj = Objective::new(&algo, &algo, faulty.clone(), 0..SCENARIOS, HORIZON)
            .expect("sweep horizon fits the confirmation suffix");
        let mut sliced_obj = scalar_obj.clone();
        assert!(
            sliced_obj.attach_sliced(),
            "{label}: the Figure-2 stack must lower to the sliced engine"
        );

        let mut rng = SmallRng::seed_from_u64(0xb17);
        let scripts: Vec<Script> = (0..scripts_n)
            .map(|_| Script::random(algo.n(), faulty.clone(), 4, 0, &SEARCH_SPACE, &mut rng))
            .collect();

        // Verification pass first: every sliced verdict must match the
        // scalar engine, script for script — a throughput number for a
        // divergent engine is meaningless. The scalar engine is
        // stateless, so its verification pass is already steady state
        // and doubles as its timing. The sliced pass compiles and
        // caches the round programs, so the timed reps below measure
        // the cache-warm regime a search sweep actually runs in.
        let start = Instant::now();
        let scalar: Vec<Delay> = scripts.iter().map(|s| scalar_obj.evaluate(s)).collect();
        let scalar_time = start.elapsed().as_secs_f64();
        let warm: Vec<Delay> = scripts.iter().map(|s| sliced_obj.evaluate(s)).collect();
        assert_eq!(
            scalar, warm,
            "{label}: sliced delays diverge from the scalar engine"
        );

        let start = Instant::now();
        let mut sliced: Vec<Delay> = Vec::new();
        for _ in 0..reps {
            sliced = scripts.iter().map(|s| sliced_obj.evaluate(s)).collect();
        }
        let sliced_time = start.elapsed().as_secs_f64() / reps as f64;
        assert_eq!(
            scalar, sliced,
            "{label}: sliced delays diverge after cache warm-up"
        );

        let row = BitslicedRow {
            label,
            seeds: SCENARIOS,
            horizon: HORIZON,
            scripts: scripts_n,
            scalar_eps: scripts_n as f64 / scalar_time,
            sliced_eps: scripts_n as f64 / sliced_time,
            speedup: scalar_time / sliced_time,
        };
        println!(
            "| {:<8} | {:>5} | {:>7} | {:>7} | {:>14.1} | {:>14.1} | {:>7.1}x |",
            row.label,
            row.seeds,
            row.horizon,
            row.scripts,
            row.scalar_eps,
            row.sliced_eps,
            row.speedup
        );
        if row.label == "A(36,7)" {
            assert!(
                row.speedup >= 20.0,
                "A(36,7): bit-sliced objective must be ≥ 20× the scalar engine, got {:.1}x",
                row.speedup
            );
        }
        rows.push(row);
    }

    // Structured search moves vs plain hill-climbing, riding the cheap
    // sliced evals on A(4,1): same budget, same seed, same sweep.
    let (label, algo, _) = stack().remove(0);
    let faulty = vec![1usize];
    let mut obj = Objective::new(&algo, &algo, faulty, 0..SCENARIOS, HORIZON)
        .expect("sweep horizon fits the confirmation suffix");
    assert!(obj.attach_sliced());
    let mut cfg = SearchConfig::new(4, SEARCH_SPACE, 3);
    cfg.budget = 256;
    let start = Instant::now();
    let climb = search::hill_climb(&obj, &cfg);
    let climb_time = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let structured = search::anneal(&obj, &cfg);
    let structured_time = start.elapsed().as_secs_f64();
    println!(
        "\n| {:<22} | {:>13} | {:>8} | {:>6} | {:>9} |",
        "search (sliced A(4,1))", "worst", "total", "evals", "evals/s"
    );
    println!(
        "|{}|{}|{}|{}|{}|",
        "-".repeat(24),
        "-".repeat(15),
        "-".repeat(10),
        "-".repeat(8),
        "-".repeat(11)
    );
    println!(
        "| {:<22} | {:>13} | {:>8} | {:>6} | {:>9.0} |",
        "hill_climb",
        climb.delay.worst,
        climb.delay.total,
        climb.evaluations,
        climb.evaluations as f64 / climb_time
    );
    println!(
        "| {:<22} | {:>13} | {:>8} | {:>6} | {:>9.0} |",
        "anneal (structured)",
        structured.delay.worst,
        structured.delay.total,
        structured.evaluations,
        structured.evaluations as f64 / structured_time
    );
    assert!(
        structured.delay >= climb.delay,
        "{label}: structured moves must match or beat plain hill_climb \
         ({:?} vs {:?})",
        structured.delay,
        climb.delay
    );
    println!();

    write_bitsliced_trajectory(&rows, &climb.delay, &structured.delay);
}

/// Appends this run's measurements to `BENCH_bitsliced.json` at the
/// workspace root (one JSON object per line — a self-describing
/// trajectory future PRs can diff their baselines against).
fn write_bitsliced_trajectory(rows: &[BitslicedRow], climb: &Delay, structured: &Delay) {
    let mut entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"counter\":\"{}\",\"seeds\":{},\"horizon\":{},\"scripts\":{},\
                 \"scalar_evals_per_sec\":{:.2},\"sliced_evals_per_sec\":{:.2},\
                 \"speedup\":{:.2}}}",
                r.label, r.seeds, r.horizon, r.scripts, r.scalar_eps, r.sliced_eps, r.speedup
            )
        })
        .collect();
    entries.push(format!(
        "{{\"search\":\"hill_climb\",\"worst\":{},\"unstable\":{},\"total\":{}}}",
        climb.worst, climb.unstable, climb.total
    ));
    entries.push(format!(
        "{{\"search\":\"anneal\",\"worst\":{},\"unstable\":{},\"total\":{}}}",
        structured.worst, structured.unstable, structured.total
    ));
    let line = format!(
        "{{\"bench\":\"bitsliced\",\"gate_min_speedup\":20.0,\"rows\":[{}]}}\n",
        entries.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_bitsliced.json");
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    match appended {
        Ok(()) => println!("trajectory appended to BENCH_bitsliced.json"),
        Err(e) => println!("warning: could not write BENCH_bitsliced.json: {e}"),
    }
}

/// The E7 synthesis workload (`n = 4, f = 1`, 2 states): candidate tables
/// the hill-climb scores — the deterministic follow-max table plus random
/// candidates drawn exactly like the synthesiser's restarts.
fn synthesis_candidates() -> Vec<LutCounter> {
    let follow_max: Vec<u8> = (0..16u32)
        .map(|index| {
            let max = (0..4).map(|u| (index >> u & 1) as u8).max().unwrap();
            (max + 1) % 2
        })
        .collect();
    let mut candidates = vec![LutCounter::new(LutSpec {
        n: 4,
        f: 1,
        c: 2,
        states: 2,
        transition: vec![
            follow_max.clone(),
            follow_max.clone(),
            follow_max.clone(),
            follow_max,
        ],
        output: vec![vec![0, 1]; 4],
        stabilization_bound: 0,
    })
    .unwrap()];
    for seed in 0..7u64 {
        // xorshift-ish deterministic tables; the exact bits are irrelevant,
        // only that both engines score the same candidates.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut bit = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 1) as u8
        };
        let transition: Vec<Vec<u8>> = (0..4).map(|_| (0..16).map(|_| bit()).collect()).collect();
        candidates.push(
            LutCounter::new(LutSpec {
                n: 4,
                f: 1,
                c: 2,
                states: 2,
                transition,
                output: vec![vec![0, 1]; 4],
                stabilization_bound: 0,
            })
            .unwrap(),
        );
    }
    candidates
}

/// The verifier table: `analyze` throughput (the synthesis scoring
/// function) on the E7 `n = 4, f = 1` workload, bitset game core vs the
/// retained reference checker, plus the `16^4`-configuration instance the
/// seed limits rejected. Summaries of the two engines are asserted equal
/// candidate for candidate — this table is the verifier's divergence gate
/// in `THROUGHPUT_SUMMARY_ONLY=1` CI runs.
fn verifier_table() {
    /// `analyze` calls per engine per workload row.
    const ITERS: u32 = 400;
    /// Configurations explored by one `n = 4, f = 1, |X| = 2` analyze:
    /// `2^4` for the empty fault set + four singletons at `2^3`.
    const SYNTH_CONFIGS: u64 = 16 + 4 * 8;

    println!("## exhaustive verifier — bitset game core vs retained reference\n");
    println!(
        "| {:<34} | {:>14} | {:>14} | {:>13} | {:>13} | {:>8} |",
        "workload", "ref (s)", "bitset (s)", "ref cfg/s", "bitset cfg/s", "speedup"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|",
        "-".repeat(36),
        "-".repeat(16),
        "-".repeat(16),
        "-".repeat(15),
        "-".repeat(15),
        "-".repeat(10)
    );

    // --- analyze on the synthesis workload, both engines. -----------------
    let candidates = synthesis_candidates();
    for candidate in &candidates {
        // Identical scores or the speedup is meaningless.
        assert_eq!(
            sc_verifier::analyze(candidate).unwrap(),
            sc_verifier::reference::analyze(candidate).unwrap(),
            "bitset core diverges from the reference checker"
        );
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        for candidate in &candidates {
            std::hint::black_box(sc_verifier::reference::analyze(candidate).unwrap());
        }
    }
    let ref_time = start.elapsed().as_secs_f64();
    // Score through one warm Analyzer, exactly as the hill-climb does.
    let mut analyzer = sc_verifier::Analyzer::new();
    let start = Instant::now();
    for _ in 0..ITERS {
        for candidate in &candidates {
            std::hint::black_box(analyzer.analyze(candidate).unwrap());
        }
    }
    let new_time = start.elapsed().as_secs_f64();
    let total_configs = (SYNTH_CONFIGS * u64::from(ITERS) * candidates.len() as u64) as f64;
    println!(
        "| {:<34} | {:>14.3} | {:>14.3} | {:>13.0} | {:>13.0} | {:>7.1}x |",
        format!("analyze n=4 f=1 ({}x{} cands)", ITERS, candidates.len()),
        ref_time,
        new_time,
        total_configs / ref_time,
        total_configs / new_time,
        ref_time / new_time
    );

    // --- the previously-rejected 16^4 instance. ---------------------------
    let big = sc_bench::sixteen_state_instance();
    assert!(
        sc_verifier::reference::analyze(&big).is_err(),
        "the 16^4 instance must exceed the seed limits"
    );
    let start = Instant::now();
    let summary = sc_verifier::analyze(&big).unwrap();
    let big_time = start.elapsed().as_secs_f64();
    assert!(summary.failure.is_none() && summary.worst_time == 1);
    println!(
        "| {:<34} | {:>14} | {:>14.3} | {:>13} | {:>13.0} | {:>8} |",
        "analyze 16^4 = 65536 configs",
        "rejected",
        big_time,
        "-",
        65536.0 / big_time,
        "-"
    );

    // --- synthesis throughput on the new core (evaluations/sec). ----------
    let budget = 1024u64;
    let start = Instant::now();
    let report = synthesize(4, 1, 2, 2, 5, budget).unwrap();
    let synth_time = start.elapsed().as_secs_f64();
    assert!(matches!(report.outcome, SynthesisOutcome::Exhausted { .. }));
    println!(
        "\nsynthesize n=4 f=1: {} candidate evaluations in {:.3} s \
         ({:.0} evals/s on the bitset core)\n",
        report.evaluations,
        synth_time,
        report.evaluations as f64 / synth_time
    );
}

/// Exchangeable `n = 4, f = 1, |X| = 16` candidates for the quotient
/// speedup row: one shared transition table per candidate, depending only
/// on the multiset of received states (a deterministic xorshift state per
/// class), so both engines are sound on every one of them.
fn symmetric_candidates() -> Vec<LutCounter> {
    let n = 4usize;
    let x = 16usize;
    let rows = x.pow(n as u32);
    (0..4u64)
        .map(|seed| {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % x as u64) as u8
            };
            // Assign one next-state per sorted-digit class, then expand to
            // the full row table.
            let mut classes: std::collections::HashMap<Vec<u8>, u8> =
                std::collections::HashMap::new();
            let mut table = vec![0u8; rows];
            for (r, slot) in table.iter_mut().enumerate() {
                let mut digits = Vec::with_capacity(n);
                let mut rest = r;
                for _ in 0..n {
                    digits.push((rest % x) as u8);
                    rest /= x;
                }
                digits.sort_unstable();
                *slot = *classes.entry(digits).or_insert_with(&mut next);
            }
            LutCounter::new(LutSpec {
                n,
                f: 1,
                c: 2,
                states: x as u8,
                transition: vec![table; n],
                output: vec![(0..x as u64).map(|s| s % 2).collect(); n],
                stabilization_bound: 0,
            })
            .unwrap()
        })
        .collect()
}

/// The synthesis-pipeline table: the orbit-quotient solver vs the retained
/// full bitset solver on an exchangeable `n = 4, f = 1, |X| = 8` workload
/// (summaries asserted bitwise equal candidate for candidate, **≥ 3×**
/// speedup gated), followed by the end-to-end `n = 5, f = 1` campaign —
/// the declared 64-candidate symmetric family swept through the attack
/// pre-filter and the quotient verifier, with the filtered / survivor /
/// verified / found ledger. Measurements append to `BENCH_synthesis.json`.
fn synthesis_table() {
    /// `analyze` calls per engine on the speedup workload.
    const ITERS: u32 = 8;

    println!("## orbit-quotient verifier — full solver vs quotient, exchangeable n=4 f=1 |X|=16\n");
    let candidates = symmetric_candidates();
    let mut full = Analyzer::with_mode(SolverMode::Full);
    let mut quot = Analyzer::with_mode(SolverMode::Quotient);
    for candidate in &candidates {
        // Bitwise-equal summaries or the speedup is meaningless.
        assert_eq!(
            full.analyze(candidate).unwrap(),
            quot.analyze(candidate).unwrap(),
            "quotient solver diverges from the full solver"
        );
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        for candidate in &candidates {
            std::hint::black_box(full.analyze(candidate).unwrap());
        }
    }
    let full_time = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..ITERS {
        for candidate in &candidates {
            std::hint::black_box(quot.analyze(candidate).unwrap());
        }
    }
    let quot_time = start.elapsed().as_secs_f64();
    // Full joint space per analyze: 16^4 fault-free + 4 singleton games at
    // 16^3; the quotient decides the same space through C(19,4) + 4·C(18,3)
    // orbit games — a 11.5x state-space contraction.
    let configs_per_analyze = 65536 + 4 * 4096;
    let orbits_per_analyze = 3876 + 4 * 816;
    let quotient_ratio = configs_per_analyze as f64 / orbits_per_analyze as f64;
    let total_configs = (configs_per_analyze * ITERS as usize * candidates.len()) as f64;
    let speedup = full_time / quot_time;
    println!(
        "| {:<34} | {:>12} | {:>14} | {:>14} | {:>8} |",
        "workload", "states ratio", "full cfg/s", "quotient cfg/s", "speedup"
    );
    println!(
        "|{}|{}|{}|{}|{}|",
        "-".repeat(36),
        "-".repeat(14),
        "-".repeat(16),
        "-".repeat(16),
        "-".repeat(10)
    );
    println!(
        "| {:<34} | {:>11.1}x | {:>14.0} | {:>14.0} | {:>7.1}x |",
        format!("analyze n=4 f=1 |X|=16 ({}x{})", ITERS, candidates.len()),
        quotient_ratio,
        total_configs / full_time,
        total_configs / quot_time,
        speedup
    );
    assert!(
        speedup >= 3.0,
        "orbit quotient must be ≥ 3× the full solver on the n=4 f=1 workload, got {speedup:.1}x"
    );

    // --- the n = 5 campaign: pre-filter + quotient, end to end. -----------
    let family = SymmetricFamily::new(5, 1, 2, 2).expect("declared family must be well-formed");
    let total = family.len().expect("64 candidates");
    let mut filter = AttackPreFilter::new(4, 3, 48, 9);
    let mut analyzer = Analyzer::new();
    analyzer.dedup_fault_sets(true);
    let mut checkpoint = SweepCheckpoint::new();
    let start = Instant::now();
    let outcome = sweep_family(
        &family,
        &mut filter,
        &mut analyzer,
        &mut checkpoint,
        u64::MAX,
    )
    .expect("the n=5 family must sweep end-to-end");
    let sweep_time = start.elapsed().as_secs_f64();
    assert!(outcome.complete, "the 64-candidate family must complete");
    let ledger = checkpoint.ledger;
    assert_eq!(ledger.screened, total);
    assert_eq!(ledger.screened, ledger.filtered + ledger.survivors);
    assert_eq!(ledger.verified, ledger.survivors);
    let reject_rate = ledger.filtered as f64 / ledger.screened as f64;
    let evals_per_sec = filter.evaluations() as f64 / sweep_time;
    println!(
        "\nn=5 f=1 synthesis sweep (|X|=2, {} classes, {} candidates): \
         {} filtered / {} survivors / {} verified / {} found in {:.2} s \
         ({:.0} attack evals/s, reject rate {:.2})\n",
        family.classes(),
        total,
        ledger.filtered,
        ledger.survivors,
        ledger.verified,
        ledger.found,
        sweep_time,
        evals_per_sec,
        reject_rate
    );

    write_synthesis_trajectory(
        speedup,
        quotient_ratio,
        total_configs / quot_time,
        evals_per_sec,
        reject_rate,
        &ledger,
    );
}

/// Appends this run's synthesis-pipeline measurements to
/// `BENCH_synthesis.json` at the workspace root (one JSON object per line,
/// same trajectory format as `BENCH_bitsliced.json`).
fn write_synthesis_trajectory(
    speedup: f64,
    quotient_ratio: f64,
    configs_per_sec: f64,
    evals_per_sec: f64,
    reject_rate: f64,
    ledger: &sc_verifier::SweepLedger,
) {
    let line = format!(
        "{{\"bench\":\"synthesis\",\"gate_min_speedup\":3.0,\
         \"quotient_speedup\":{speedup:.2},\"quotient_ratio\":{quotient_ratio:.2},\
         \"configs_per_sec\":{configs_per_sec:.2},\"prefilter_evals_per_sec\":{evals_per_sec:.2},\
         \"prefilter_reject_rate\":{reject_rate:.3},\
         \"ledger\":{{\"screened\":{},\"filtered\":{},\"survivors\":{},\
         \"verified\":{},\"found\":{}}}}}\n",
        ledger.screened, ledger.filtered, ledger.survivors, ledger.verified, ledger.found
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_synthesis.json");
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    match appended {
        Ok(()) => println!("trajectory appended to BENCH_synthesis.json"),
        Err(e) => println!("warning: could not write BENCH_synthesis.json: {e}"),
    }
}

/// One spawn-per-call sweep: the fan-out shape `Batch` had before the
/// persistent pool — a `thread::scope` per sweep call spawning **all**
/// `threads` workers (the submitter only collected), each worker taking
/// the strided slice `t, t + threads, …`, outcomes merged back in
/// scenario order. Work and partitioning match the pool path at the same
/// cap; per-call thread start-up is the entire difference.
fn spawn_per_call_sweep(
    algo: &Algorithm,
    scenarios: &[Scenario<CounterState>],
    horizon: u64,
    threads: usize,
    factory: &AdversaryFactory<'_>,
) -> Vec<sc_sim::ScenarioOutcome> {
    let stripes: Vec<Vec<Scenario<CounterState>>> = (0..threads)
        .map(|t| scenarios.iter().skip(t).step_by(threads).cloned().collect())
        .collect();
    let run_stripe = |stripe: &[Scenario<CounterState>]| {
        Batch::new(algo, horizon)
            .threads(1)
            .run_prepared(stripe, |s: &Scenario<CounterState>| factory(s.seed))
            .outcomes
    };
    let outs: Vec<Vec<sc_sim::ScenarioOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = stripes
            .iter()
            .map(|stripe| scope.spawn(|| run_stripe(stripe)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("spawned stripe panicked"))
            .collect()
    });
    let mut iters: Vec<_> = outs.into_iter().map(|o| o.into_iter()).collect();
    let mut merged = Vec::with_capacity(scenarios.len());
    for index in 0..scenarios.len() {
        merged.extend(iters[index % threads].next());
    }
    merged
}

/// The parallel-scaling table: persistent-pool vs spawn-per-call fan-out
/// on a repeated small-batch A(4,1) sweep (verdicts asserted identical,
/// **≥ 1.5×** gated — the workload is sized so per-call thread start-up
/// dominates), thread-cap wall-clock rows for that sweep and the n = 5
/// family sweep (checkpoints asserted identical across caps, wall-clock
/// improvement gated when the host actually has ≥ 2 threads), and the
/// attack pre-filter's cold vs warm sweep-context evals/s. Measurements
/// append to `BENCH_parallel.json`.
fn parallel_table() {
    /// Sweep calls per measurement: many small calls, so per-call overhead
    /// (two thread spawns vs a pool hand-off) is what the clock sees.
    const REPS: u32 = 1200;
    /// Scenarios per call — deliberately tiny (one short batch).
    const SMALL: u64 = 4;
    /// Rounds per scenario — deliberately short; every timed path runs the
    /// same horizon, and the workload must stay small enough that per-call
    /// fan-out overhead dominates the clock.
    const SMALL_HORIZON: u64 = 8;

    println!("## parallel scaling — persistent sc-exec pool, spawn-per-call baseline\n");
    let algo = CounterBuilder::corollary1(1, 2).unwrap().build().unwrap();
    let scenarios = Scenario::seeds(0..SMALL);
    let factory: AdversaryFactory<'_> =
        Box::new(|seed| Box::new(adversaries::crash(&algo, [1], seed)));

    // Verdict equality first: pool caps and the spawn baseline must agree
    // scenario for scenario, or the timings compare different computations.
    let run_pool = |threads: usize| {
        Batch::new(&algo, SMALL_HORIZON)
            .threads(threads)
            .run_prepared(&scenarios, |s: &Scenario<CounterState>| factory(s.seed))
            .outcomes
    };
    let baseline = run_pool(1);
    assert_eq!(
        baseline,
        run_pool(2),
        "pool fan-out diverges from the serial sweep"
    );
    assert_eq!(
        baseline,
        spawn_per_call_sweep(&algo, &scenarios, SMALL_HORIZON, 2, &factory),
        "spawn-per-call baseline diverges from the pool sweep"
    );

    let time = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        for _ in 0..REPS {
            f();
        }
        start.elapsed().as_secs_f64()
    };
    let all_threads = sc_exec::threads();
    let small_t1 = time(&mut || {
        std::hint::black_box(run_pool(1));
    });
    let small_t2 = time(&mut || {
        std::hint::black_box(run_pool(2));
    });
    let small_all = time(&mut || {
        std::hint::black_box(run_pool(all_threads));
    });
    let spawn_t2 = time(&mut || {
        std::hint::black_box(spawn_per_call_sweep(
            &algo,
            &scenarios,
            SMALL_HORIZON,
            2,
            &factory,
        ));
    });
    let spawn_speedup = spawn_t2 / small_t2;

    // --- the n = 5 family sweep per thread cap. ---------------------------
    let family = SymmetricFamily::new(5, 1, 2, 2).expect("declared family must be well-formed");
    let sweep_at = |workers: usize, threads: usize| {
        let pool = sc_exec::Pool::new(workers);
        let mut filter = AttackPreFilter::new(4, 3, 48, 9);
        let mut analyzer = Analyzer::new();
        analyzer.dedup_fault_sets(true);
        let mut checkpoint = SweepCheckpoint::new();
        let start = Instant::now();
        let outcome = sc_verifier::sweep_family_on(
            &pool,
            threads,
            &family,
            &mut filter,
            &mut analyzer,
            &mut checkpoint,
            u64::MAX,
        )
        .expect("the n=5 family must sweep end-to-end");
        assert!(outcome.complete);
        (start.elapsed().as_secs_f64(), checkpoint)
    };
    // One untimed pass first: the timed rows below compare thread caps, not
    // first-touch effects (page faults, lazy LUT/engine allocation).
    let _ = sweep_at(0, 1);
    let (sweep_t1, sweep_serial) = sweep_at(0, 1);
    let (sweep_t2, sweep_two) = sweep_at(1, 2);
    let (sweep_all, sweep_wide) = sweep_at(all_threads.saturating_sub(1), all_threads);
    assert_eq!(
        sweep_serial, sweep_two,
        "2-thread family sweep diverges from serial"
    );
    assert_eq!(
        sweep_serial, sweep_wide,
        "{all_threads}-thread family sweep diverges from serial"
    );

    println!(
        "| {:<38} | {:>10} | {:>10} | {:>13} |",
        "workload (wall-clock seconds)", "threads 1", "threads 2", "all threads"
    );
    println!(
        "|{}|{}|{}|{}|",
        "-".repeat(40),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(15)
    );
    println!(
        "| {:<38} | {:>10.3} | {:>10.3} | {:>9.3} ({}) |",
        format!("{REPS}x small batch A(4,1) ({SMALL} scen.)"),
        small_t1,
        small_t2,
        small_all,
        all_threads
    );
    println!(
        "| {:<38} | {:>10.3} | {:>10.3} | {:>9.3} ({}) |",
        "n=5 f=1 family sweep (64 candidates)", sweep_t1, sweep_t2, sweep_all, all_threads
    );
    println!(
        "\nspawn-per-call baseline at 2 threads: {spawn_t2:.3} s → persistent pool is \
         {spawn_speedup:.1}x faster on the repeated small-batch sweep\n"
    );
    assert!(
        spawn_speedup >= 1.5,
        "the persistent pool must beat spawn-per-call by ≥ 1.5x on the \
         small-batch sweep, got {spawn_speedup:.2}x"
    );
    if all_threads >= 2 {
        assert!(
            sweep_all < sweep_t1 * 0.95,
            "with {all_threads} threads the family sweep must beat serial: \
             {sweep_all:.3} s vs {sweep_t1:.3} s"
        );
    }

    // --- pre-filter sweep context: cold (per-candidate) vs warm. ----------
    // Interleaved best-of-3 passes: the delta is per-candidate setup work,
    // small against the attack evaluations themselves, so back-to-back
    // single-shot timings would mostly compare clock drift.
    let mut lut = family.seed().unwrap();
    let total = family.len().unwrap();
    let (mut cold_time, mut warm_time) = (f64::INFINITY, f64::INFINITY);
    let (mut cold_evals, mut warm_evals) = (0u64, 0u64);
    for _ in 0..3 {
        // Cold: a fresh filter per candidate, resampling the sweep each time.
        let mut evals = 0u64;
        let start = Instant::now();
        for index in 0..total {
            family.instantiate(index, &mut lut);
            let mut filter = AttackPreFilter::new(4, 3, 48, 9);
            std::hint::black_box(sc_verifier::CandidateFilter::reject(&mut filter, &lut));
            evals += filter.evaluations();
        }
        cold_time = cold_time.min(start.elapsed().as_secs_f64());
        cold_evals = evals;
        // Warm: one filter carries the sweep context across the family.
        let mut filter = AttackPreFilter::new(4, 3, 48, 9);
        let start = Instant::now();
        for index in 0..total {
            family.instantiate(index, &mut lut);
            std::hint::black_box(sc_verifier::CandidateFilter::reject(&mut filter, &lut));
        }
        warm_time = warm_time.min(start.elapsed().as_secs_f64());
        warm_evals = filter.evaluations();
    }
    assert_eq!(
        warm_evals, cold_evals,
        "the warm sweep context must be bitwise-neutral"
    );
    let cold_rate = cold_evals as f64 / cold_time;
    let warm_rate = cold_evals as f64 / warm_time;
    println!(
        "pre-filter sweep context over the n=5 family: cold {:.0} evals/s, \
         warm {:.0} evals/s ({:.2}x)\n",
        cold_rate,
        warm_rate,
        cold_time / warm_time
    );

    write_parallel_trajectory(
        spawn_speedup,
        [small_t1, small_t2, small_all],
        [sweep_t1, sweep_t2, sweep_all],
        all_threads,
        cold_rate,
        warm_rate,
        &sweep_serial.ledger,
    );
}

/// Appends this run's parallel-scaling measurements to `BENCH_parallel.json`
/// at the workspace root (one JSON object per line, same trajectory format
/// as the other `BENCH_*.json` files).
fn write_parallel_trajectory(
    spawn_speedup: f64,
    small: [f64; 3],
    sweep: [f64; 3],
    all_threads: usize,
    cold_rate: f64,
    warm_rate: f64,
    ledger: &sc_verifier::SweepLedger,
) {
    let line = format!(
        "{{\"bench\":\"parallel\",\"gate_min_spawn_speedup\":1.5,\
         \"spawn_vs_pool_speedup\":{spawn_speedup:.2},\"threads_all\":{all_threads},\
         \"small_batch_secs\":{{\"t1\":{:.4},\"t2\":{:.4},\"all\":{:.4}}},\
         \"family_sweep_secs\":{{\"t1\":{:.3},\"t2\":{:.3},\"all\":{:.3}}},\
         \"prefilter_evals_per_sec\":{{\"cold\":{cold_rate:.1},\"warm\":{warm_rate:.1}}},\
         \"ledger\":{{\"screened\":{},\"filtered\":{},\"survivors\":{},\
         \"verified\":{},\"found\":{}}}}}\n",
        small[0],
        small[1],
        small[2],
        sweep[0],
        sweep[1],
        sweep[2],
        ledger.screened,
        ledger.filtered,
        ledger.survivors,
        ledger.verified,
        ledger.found
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    match appended {
        Ok(()) => println!("trajectory appended to BENCH_parallel.json"),
        Err(e) => println!("warning: could not write BENCH_parallel.json: {e}"),
    }
}

/// Sorted-sample percentile (nearest-rank on the scaled index).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// The live-runtime smoke table: one `sc-runtime` A(4,1) run with real
/// injected faults — a delayed burst, a scripted-witness burst, an
/// equivocation burst, and a terminal crash — while saturating reader
/// threads hammer the [`sc_runtime::CounterHandle`] snapshot. Reports
/// reads/s (gated **≥ 1M** — the read path is one atomic load, so
/// anything less means the snapshot plane regressed), per-burst recovery
/// times with percentiles, and batched read-latency percentiles. The same
/// config then runs twice through the deterministic harness and the
/// digests must agree — the bit-reproducibility witness recorded in the
/// trajectory. Measurements append to `BENCH_runtime.json`.
fn runtime_table() {
    use sc_runtime::{
        run_deterministic, run_live, FaultEntry, FaultKind, FaultPlan, RuntimeConfig,
    };

    /// Round period: roomy enough that loaded CI machines make deadlines.
    const PERIOD_NS: u64 = 1_000_000;
    /// Reads per timed latency batch (a single read is ~1 ns; batching
    /// keeps the timer overhead out of the sample).
    const BATCH: u64 = 4096;
    const READERS: usize = 3;

    println!("## live runtime — A(4,1), injected faults, saturating snapshot readers\n");

    let algo = CounterBuilder::corollary1(1, 2).unwrap().build().unwrap();
    let mut rng = SmallRng::seed_from_u64(0x11fe);
    let script = Script::random(4, vec![2], 4, 0, &MoveSpace::echoes(2), &mut rng);
    // A single in-budget fault is *masked* once A(4,1) stabilises — no
    // recovery to measure. So the bursts briefly overlap into
    // over-budget territory (two-plus simultaneous faults), the
    // transient corruption self-stabilisation is specified to absorb:
    // the monitor loses stability during each overlap and the recovery
    // table below times the re-confirmation after each burst end.
    let plan = FaultPlan::new(
        4,
        vec![
            FaultEntry {
                node: 0,
                from_round: 10,
                until_round: Some(18),
                kind: FaultKind::Delayed {
                    jitter_permille: 1500,
                },
            },
            FaultEntry {
                node: 1,
                from_round: 14,
                until_round: None,
                kind: FaultKind::Crash, // death is permanent: one budget slot gone
            },
            FaultEntry {
                node: 2,
                from_round: 40,
                until_round: Some(48),
                kind: FaultKind::Scripted(script),
            },
            FaultEntry {
                node: 3,
                from_round: 44,
                until_round: Some(52),
                kind: FaultKind::Equivocate,
            },
        ],
    )
    .expect("bench plan is well-formed");
    let config = RuntimeConfig {
        period_ns: PERIOD_NS,
        horizon: 80,
        seed: 0xbead,
        confirm: None,
        // The plan wraps all four nodes (so the derived `n − f` quorum
        // would be 0), but outside the deliberate overlaps at most one
        // node misbehaves at a time: n − 1 reports can agree again after
        // every burst.
        quorum: Some(3),
        plan,
    };

    type ReaderStats = (u64, u64, Vec<u64>);
    let (report, readers): (_, Vec<ReaderStats>) = run_live(&algo, &config, |handle| {
        std::thread::scope(|scope| {
            let spawned: Vec<_> = (0..READERS)
                .map(|_| {
                    scope.spawn(move || {
                        let mut reads = 0u64;
                        let mut last_version = 0u64;
                        let mut samples: Vec<u64> = Vec::new();
                        while !handle.is_done() {
                            let start = Instant::now();
                            for _ in 0..BATCH {
                                let (version, _) = handle.read();
                                assert!(version >= last_version, "snapshot went backwards");
                                last_version = version;
                            }
                            // Per-batch nanos; a single read is sub-ns,
                            // so divide as float only when reporting.
                            samples.push(start.elapsed().as_nanos() as u64);
                            reads += BATCH;
                        }
                        (reads, last_version, samples)
                    })
                })
                .collect();
            spawned
                .into_iter()
                .map(|h| h.join().expect("reader thread panicked"))
                .collect()
        })
    })
    .expect("bench config is valid");

    let total_reads: u64 = readers.iter().map(|(reads, _, _)| reads).sum();
    let wall_secs = report.wall_nanos as f64 / 1e9;
    let reads_per_sec = total_reads as f64 / wall_secs;
    let mut latencies: Vec<u64> = readers
        .iter()
        .flat_map(|(_, _, samples)| samples.iter().copied())
        .collect();
    latencies.sort_unstable();
    let per_read = |batch_ns: u64| batch_ns as f64 / BATCH as f64;
    let lat = [
        per_read(percentile(&latencies, 0.5)),
        per_read(percentile(&latencies, 0.9)),
        per_read(percentile(&latencies, 0.99)),
        per_read(*latencies.last().unwrap_or(&0)),
    ];
    let mut recovery_ns: Vec<u64> = report.recoveries.iter().map(|r| r.nanos).collect();
    recovery_ns.sort_unstable();
    let rec = [
        percentile(&recovery_ns, 0.5),
        percentile(&recovery_ns, 0.9),
        *recovery_ns.last().unwrap_or(&0),
    ];

    // Every reader must have served from the converged snapshot, the run
    // must end stable despite four distinct injections, and the read
    // plane must sustain the gate rate.
    for (i, (_, last_version, _)) in readers.iter().enumerate() {
        assert!(*last_version > 0, "reader {i} never saw a stable snapshot");
    }
    assert!(
        report.events.iter().rev().find(|e| e.stable).is_some(),
        "the live bench run must end stable; events {:?}",
        report.events
    );
    assert!(
        reads_per_sec >= 1_000_000.0,
        "snapshot plane must serve ≥ 1M reads/s, got {reads_per_sec:.0}"
    );
    assert!(
        report.recoveries.len() >= 2,
        "every over-budget burst must yield a recovery measurement; got {:?}",
        report.recoveries
    );

    // Bit-reproducibility witness: the identical config, driven twice
    // through the deterministic harness, must produce one digest.
    let det_a = run_deterministic(&algo, &config).expect("bench config is valid");
    let det_b = run_deterministic(&algo, &config).expect("bench config is valid");
    assert_eq!(
        det_a.digest, det_b.digest,
        "deterministic harness must reproduce bit-identically"
    );

    println!(
        "| {:>12} | {:>12} | {:>8} | {:>24} | {:>28} |",
        "reads/s",
        "reads",
        "wall (s)",
        "recovery p50/p90/max (ms)",
        "read lat p50/p90/p99/max (ns)"
    );
    println!(
        "|{}|{}|{}|{}|{}|",
        "-".repeat(14),
        "-".repeat(14),
        "-".repeat(10),
        "-".repeat(26),
        "-".repeat(30)
    );
    println!(
        "| {:>12.0} | {:>12} | {:>8.3} | {:>24} | {:>28} |",
        reads_per_sec,
        total_reads,
        wall_secs,
        format!(
            "{:.1} / {:.1} / {:.1}",
            rec[0] as f64 / 1e6,
            rec[1] as f64 / 1e6,
            rec[2] as f64 / 1e6
        ),
        format!(
            "{:.2} / {:.2} / {:.2} / {:.2}",
            lat[0], lat[1], lat[2], lat[3]
        ),
    );
    println!(
        "\nfirst stable round {:?}, {} recoveries across the bounded bursts, \
         det digest 0x{:016x}\n",
        report.first_stable_round,
        report.recoveries.len(),
        det_a.digest
    );

    let recov_entries: Vec<String> = report
        .recoveries
        .iter()
        .map(|r| {
            format!(
                "{{\"burst_end_round\":{},\"stable_round\":{},\"nanos\":{}}}",
                r.burst_end_round, r.stable_round, r.nanos
            )
        })
        .collect();
    let line = format!(
        "{{\"bench\":\"runtime\",\"gate_min_reads_per_sec\":1000000.0,\
         \"reads_per_sec\":{reads_per_sec:.0},\"reads\":{total_reads},\
         \"wall_secs\":{wall_secs:.4},\"period_ns\":{PERIOD_NS},\"readers\":{READERS},\
         \"recovery_ns\":{{\"p50\":{},\"p90\":{},\"max\":{}}},\
         \"read_latency_ns\":{{\"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3},\"max\":{:.3}}},\
         \"recoveries\":[{}],\"det_digest\":\"0x{:016x}\"}}\n",
        rec[0],
        rec[1],
        rec[2],
        lat[0],
        lat[1],
        lat[2],
        lat[3],
        recov_entries.join(","),
        det_a.digest
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    match appended {
        Ok(()) => println!("trajectory appended to BENCH_runtime.json"),
        Err(e) => println!("warning: could not write BENCH_runtime.json: {e}"),
    }
}

/// The observability table (trace builds): the traced live-runtime hot
/// path against the untraced one — same config, same seed, wall-clock
/// compared with a **≤ 5%** overhead gate (instrumentation is a handful
/// of ring pushes per round; the wall clock is paced by the round
/// schedule, so any real perturbation shows up as deadline misses and a
/// longer run) — the metered [`sc_runtime::CounterHandle`] read path
/// under the same **≥ 1M reads/s** gate as the runtime table (the
/// read-rate meter is one thread-local increment per read), the
/// traced-vs-untraced digest-equality witness on the deterministic
/// harness, and a flight-recorder firing on an injected over-budget
/// burst with its merged dump sizes. Measurements append to
/// `BENCH_obs.json`.
#[cfg(feature = "trace")]
fn observability_table() {
    use sc_runtime::obs::{FlightConfig, TriggerReason};
    use sc_runtime::{
        run_deterministic, run_deterministic_obs, run_live_obs, FaultEntry, FaultKind, FaultPlan,
        RuntimeConfig, RuntimeObs,
    };

    /// Round period: roomy enough that loaded CI machines make deadlines.
    const PERIOD_NS: u64 = 1_000_000;
    /// Rounds per timed live run (~60 ms of wall clock each).
    const LIVE_HORIZON: u64 = 60;
    /// Wall-clock passes per variant; the minimum is compared, so one
    /// descheduled run cannot fail the overhead gate on its own.
    const PASSES: usize = 3;
    const READERS: usize = 2;

    println!("## observability — traced hot path vs untraced, metered reads, flight recorder\n");

    let algo = CounterBuilder::corollary1(1, 2).unwrap().build().unwrap();
    let live_cfg = RuntimeConfig {
        period_ns: PERIOD_NS,
        horizon: LIVE_HORIZON,
        seed: 0x0b5,
        confirm: None,
        quorum: None,
        plan: FaultPlan::honest(4),
    };

    // --- live hot path: wall clock, detached bundle vs recording. ---------
    let timed_live = |obs: &RuntimeObs| {
        (0..PASSES)
            .map(|_| {
                let (report, ()) = run_live_obs(&algo, &live_cfg, obs, |_| {}).unwrap();
                report.wall_nanos
            })
            .min()
            .unwrap()
    };
    let untraced_ns = timed_live(&RuntimeObs::default());
    let recording = RuntimeObs::recording(FlightConfig::default());
    let traced_ns = timed_live(&recording);
    let overhead = traced_ns as f64 / untraced_ns as f64;
    assert!(
        recording.collector().unwrap().total_pushed() > 0,
        "the recording run must actually record"
    );
    assert!(
        overhead <= 1.05,
        "traced live hot path must stay within 5% of untraced, \
         got {overhead:.3}x ({traced_ns} ns vs {untraced_ns} ns)"
    );

    // --- the metered read path under the runtime table's rate gate. -------
    let read_obs = RuntimeObs::recording(FlightConfig::default());
    let (read_report, reader_counts): (_, Vec<u64>) =
        run_live_obs(&algo, &live_cfg, &read_obs, |handle| {
            std::thread::scope(|scope| {
                let spawned: Vec<_> = (0..READERS)
                    .map(|_| {
                        scope.spawn(|| {
                            let metered = read_obs.meter_reads(handle);
                            let mut reads = 0u64;
                            while !metered.is_done() {
                                metered.read();
                                reads += 1;
                            }
                            reads
                        })
                    })
                    .collect();
                spawned
                    .into_iter()
                    .map(|h| h.join().expect("reader thread panicked"))
                    .collect()
            })
        })
        .unwrap();
    let metered_reads: u64 = reader_counts.iter().sum();
    let reads_per_sec = metered_reads as f64 / (read_report.wall_nanos as f64 / 1e9);
    assert_eq!(
        read_obs.metrics().unwrap().counter("runtime.reads"),
        Some(metered_reads),
        "the read meter must count every read exactly"
    );
    assert!(
        reads_per_sec >= 1_000_000.0,
        "the metered snapshot plane must still serve ≥ 1M reads/s, got {reads_per_sec:.0}"
    );

    // --- digest equality on the deterministic harness. --------------------
    let det_cfg = RuntimeConfig {
        period_ns: PERIOD_NS,
        horizon: 60,
        seed: 77,
        confirm: None,
        quorum: None,
        plan: FaultPlan::new(
            4,
            vec![FaultEntry {
                node: 0,
                from_round: 4,
                until_round: Some(20),
                kind: FaultKind::Delayed {
                    jitter_permille: 2000,
                },
            }],
        )
        .unwrap(),
    };
    let det_plain = run_deterministic(&algo, &det_cfg).unwrap();
    let det_obs = RuntimeObs::recording(FlightConfig::default());
    let det_traced = run_deterministic_obs(&algo, &det_cfg, &det_obs).unwrap();
    assert_eq!(
        det_plain.digest, det_traced.digest,
        "tracing must not perturb the deterministic digest"
    );
    let events_pushed = det_obs.collector().unwrap().total_pushed();

    // --- flight recorder on an injected over-budget burst. ----------------
    // Probe where this seed confirms stability, then break the budget:
    // two simultaneous equivocators leave only two fresh board rows.
    let seed = 90;
    let probe_cfg = RuntimeConfig {
        period_ns: PERIOD_NS,
        horizon: 200,
        seed,
        confirm: None,
        quorum: None,
        plan: FaultPlan::honest(4),
    };
    let stable_at = run_deterministic(&algo, &probe_cfg)
        .unwrap()
        .first_stable_round
        .expect("fault-free run stabilises");
    let burst_start = stable_at + 4;
    let burst_end = burst_start + 16;
    let flight_cfg = RuntimeConfig {
        period_ns: PERIOD_NS,
        horizon: burst_end + algo.stabilization_bound() * 4 + 24,
        seed,
        confirm: None,
        quorum: Some(3), // the default n − fault_count is no majority here
        plan: FaultPlan::new(
            4,
            (2..4)
                .map(|node| FaultEntry {
                    node,
                    from_round: burst_start,
                    until_round: Some(burst_end),
                    kind: FaultKind::Equivocate,
                })
                .collect(),
        )
        .unwrap(),
    };
    let flight_obs = RuntimeObs::recording(FlightConfig::default());
    run_deterministic_obs(&algo, &flight_cfg, &flight_obs).unwrap();
    assert!(
        flight_obs.flight_fired(),
        "the over-budget burst must fire the flight recorder"
    );
    let dump = flight_obs.flight_dump().expect("fired recorder has a dump");
    assert_eq!(dump.reason, TriggerReason::StabilityLost);
    assert!(!dump.stream.events.is_empty(), "window must hold events");

    println!(
        "| {:>14} | {:>12} | {:>8} | {:>12} | {:>13} | {:>22} |",
        "untraced (ms)", "traced (ms)", "overhead", "m. reads/s", "events pushed", "flight"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|",
        "-".repeat(16),
        "-".repeat(14),
        "-".repeat(10),
        "-".repeat(14),
        "-".repeat(15),
        "-".repeat(24)
    );
    println!(
        "| {:>14.2} | {:>12.2} | {:>7.3}x | {:>12.0} | {:>13} | {:>22} |",
        untraced_ns as f64 / 1e6,
        traced_ns as f64 / 1e6,
        overhead,
        reads_per_sec,
        events_pushed,
        format!("{} ({} ev)", dump.reason.name(), dump.stream.events.len()),
    );
    println!(
        "\ndet digest 0x{:016x} traced == untraced, flight window \
         [{}, {}]\n",
        det_traced.digest, dump.first_round, dump.round
    );

    let line = format!(
        "{{\"bench\":\"obs\",\"gate_max_overhead\":1.05,\
         \"gate_min_reads_per_sec\":1000000.0,\
         \"live_wall_ns\":{{\"untraced\":{untraced_ns},\"traced\":{traced_ns}}},\
         \"overhead\":{overhead:.4},\"metered_reads\":{metered_reads},\
         \"metered_reads_per_sec\":{reads_per_sec:.0},\
         \"events_pushed\":{events_pushed},\"det_digest\":\"0x{:016x}\",\
         \"digest_match\":true,\"flight\":{{\"fired\":true,\"reason\":\"{}\",\
         \"trigger_round\":{},\"events\":{}}}}}\n",
        det_traced.digest,
        dump.reason.name(),
        dump.round,
        dump.stream.events.len()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    match appended {
        Ok(()) => println!("trajectory appended to BENCH_obs.json"),
        Err(e) => println!("warning: could not write BENCH_obs.json: {e}"),
    }
}

/// Without the `trace` feature the observability table has nothing to
/// measure — the seam compiles to no-ops by design.
#[cfg(not(feature = "trace"))]
fn observability_table() {
    println!(
        "## observability — skipped (rebuild with `--features trace` \
         for the traced-runtime table)\n"
    );
}

criterion_group!(benches, bench_throughput);

fn main() {
    // Set THROUGHPUT_SUMMARY_ONLY=1 to skip the criterion micro-benches and
    // print just the summary tables — the quick regression check, the
    // early-vs-full verdict gate, and the verifier equivalence gate.
    // THROUGHPUT_PARALLEL_ONLY=1 runs just the parallel-scaling table — the
    // quick loop for tuning the executor gates without the other tables.
    // THROUGHPUT_RUNTIME_ONLY=1 likewise runs just the live-runtime table,
    // and THROUGHPUT_OBS_ONLY=1 just the observability table (which needs
    // a `--features trace` build to measure anything).
    if std::env::var_os("THROUGHPUT_PARALLEL_ONLY").is_some() {
        parallel_table();
        return;
    }
    if std::env::var_os("THROUGHPUT_RUNTIME_ONLY").is_some() {
        runtime_table();
        return;
    }
    if std::env::var_os("THROUGHPUT_OBS_ONLY").is_some() {
        observability_table();
        return;
    }
    if std::env::var_os("THROUGHPUT_SUMMARY_ONLY").is_none() {
        benches();
    }
    summary_table();
    early_decision_table();
    bitsliced_table();
    worst_case_table();
    verifier_table();
    synthesis_table();
    parallel_table();
    runtime_table();
    observability_table();
}
