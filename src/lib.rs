//! # synchronous-counting
//!
//! A complete Rust implementation of *Towards Optimal Synchronous Counting*
//! (Christoph Lenzen, Joel Rybicki, Jukka Suomela; PODC 2015,
//! arXiv:1503.06702): self-stabilising, Byzantine fault-tolerant synchronous
//! `c`-counters with linear stabilisation time, almost-optimal resilience and
//! polylogarithmic state, together with every substrate the paper's
//! evaluation needs — a synchronous round simulator with Byzantine
//! adversaries, the phase-king consensus protocol, a pulling-model simulator,
//! baseline algorithms, and a model checker for small instances.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names; see the individual crates for the full APIs:
//!
//! * [`protocol`] — model traits ([`protocol::SyncProtocol`],
//!   [`protocol::Counter`]), message views, votes, bit codecs.
//! * [`sim`] — synchronous broadcast simulator, adversary strategies,
//!   stabilisation detection, metrics.
//! * [`consensus`] — phase-king consensus (Berman–Garay–Perry) and
//!   counting↔consensus reductions.
//! * [`core`] — the paper's contribution: resilience boosting (Theorem 1)
//!   and the recursive constructions (Corollary 1, Theorems 2–3).
//! * [`baselines`] — randomised comparison counters (Table 1 rows \[6,7\]).
//! * [`verifier`] — exhaustive verification / synthesis of small counters.
//! * [`pulling`] — the randomised pulling-model constructions of §5.
//! * [`attack`] — worst-case adversary search: scripted attacks as data,
//!   witness replay, and guided search over the equivocation space.
//! * [`runtime`] — the live runtime: OS threads exchanging states through
//!   a lock-free mailbox plane on self-clocked rounds, fault injection
//!   (crash / mute / delay / equivocate / scripted witnesses), a
//!   watchdog monitor, a versioned-snapshot read path, and a
//!   deterministic harness replaying every scenario bit-identically.
//!   With the `trace` cargo feature, `runtime::obs` exposes the `sc-obs`
//!   observability layer — metrics, lock-free event rings, and the
//!   flight recorder — wired through the runtime and the sweep engines.
//!
//! # Quickstart
//!
//! Build a deterministic self-stabilising 2-counter for `N = 4` nodes
//! tolerating `f = 1` Byzantine node (Corollary 1), and run it against an
//! equivocating adversary from a random initial configuration:
//!
//! ```
//! use synchronous_counting::core::CounterBuilder;
//! use synchronous_counting::protocol::Counter;
//! use synchronous_counting::sim::{adversaries, Simulation, StabilizationReport};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let counter = CounterBuilder::corollary1(1, 2)?.build()?;
//! assert_eq!(counter.resilience(), 1);
//!
//! let adversary = adversaries::two_faced(&counter, [0], 7);
//! let mut sim = Simulation::new(&counter, adversary, 42);
//! let report: StabilizationReport = sim.run_until_stable(counter.stabilization_bound() + 64)?;
//! assert!(report.stabilization_round <= counter.stabilization_bound());
//! # Ok(())
//! # }
//! ```

pub use sc_attack as attack;
pub use sc_baselines as baselines;
pub use sc_consensus as consensus;
pub use sc_core as core;
pub use sc_protocol as protocol;
pub use sc_pulling as pulling;
pub use sc_runtime as runtime;
pub use sc_sim as sim;
pub use sc_verifier as verifier;
